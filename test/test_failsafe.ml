(* Failure-path tests: engine cancellation, cooperative deadlines,
   runner failure isolation, checkpoint/resume and graceful
   interruption.

   Engine-level tests drive Pool/Deadline directly. Runner-level tests
   use a small synthetic registry (via run_all_to_channel's
   ?experiments override) so they exercise the full isolation /
   checkpoint / interrupt machinery without paying for the real
   experiments; the CI crash-injection smoke covers the real registry
   end to end through the CLI. *)

module Pool = Dut_engine.Pool
module Parallel = Dut_engine.Parallel
module Deadline = Dut_engine.Deadline
module Metrics = Dut_obs.Metrics
module Json = Dut_obs.Json
module Manifest = Dut_obs.Manifest
module Config = Dut_experiments.Config
module Exp = Dut_experiments.Exp
module Table = Dut_experiments.Table
module Runner = Dut_experiments.Runner
module Checkpoint = Dut_experiments.Checkpoint

let counter name =
  let before = Metrics.value name in
  fun () -> Metrics.value name - before

(* -- Pool: fast-fail cancellation --------------------------------------- *)

let test_inline_cancellation () =
  let pool = Pool.create ~jobs:1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let executed = Array.make 100 false in
  let claimed = counter "pool.tasks_claimed" in
  let cancelled = counter "pool.tasks_cancelled" in
  Alcotest.check_raises "first exception re-raised" (Failure "boom10")
    (fun () ->
      Pool.run pool ~tasks:100 (fun i ->
          if i = 10 then failwith "boom10";
          executed.(i) <- true));
  for i = 0 to 9 do
    Alcotest.(check bool) "tasks before the failure ran" true executed.(i)
  done;
  for i = 10 to 99 do
    Alcotest.(check bool) "tasks after the failure never ran" false
      executed.(i)
  done;
  Alcotest.(check int) "claims stop at the failure" 11 (claimed ());
  Alcotest.(check int) "rest tallied as cancelled" 89 (cancelled ())

let test_pooled_cancellation () =
  if Domain.recommended_domain_count () < 2 then ()
  else begin
    let pool = Pool.create ~jobs:4 in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let tasks = 32 in
    let claimed = counter "pool.tasks_claimed" in
    let cancelled = counter "pool.tasks_cancelled" in
    Alcotest.check_raises "first exception re-raised" (Failure "boom0")
      (fun () ->
        Pool.run pool ~tasks (fun i ->
            if i = 0 then failwith "boom0" else Unix.sleepf 0.005));
    Alcotest.(check int) "claimed + cancelled covers the job" tasks
      (claimed () + cancelled ());
    Alcotest.(check bool) "failure cancelled unclaimed work" true
      (cancelled () > 0)
  end

(* -- Deadline: cooperative --timeout-s ---------------------------------- *)

let expire () = Unix.sleepf 0.002

let test_deadline_check () =
  (* No deadline armed: check is free and never raises. *)
  Alcotest.(check bool) "inactive by default" false (Deadline.active ());
  Deadline.check ();
  Alcotest.check_raises "expired deadline raises" Deadline.Exceeded
    (fun () ->
      Deadline.with_timeout ~seconds:1e-4 (fun () ->
          expire ();
          Deadline.check ()));
  Alcotest.(check bool) "disarmed after with_timeout" false
    (Deadline.active ());
  Alcotest.(check int) "?seconds:None is a plain call" 7
    (Deadline.with_timeout (fun () -> 7));
  Alcotest.check_raises "non-positive budget rejected"
    (Invalid_argument "Deadline.with_timeout: seconds <= 0") (fun () ->
      Deadline.with_timeout ~seconds:0. (fun () -> ()))

let test_deadline_nesting () =
  Deadline.with_timeout ~seconds:60. @@ fun () ->
  Alcotest.(check bool) "outer active" true (Deadline.active ());
  Alcotest.check_raises "inner tightens" Deadline.Exceeded (fun () ->
      Deadline.with_timeout ~seconds:1e-4 (fun () ->
          expire ();
          Deadline.check ()));
  (* The outer 60s budget is restored and not expired. *)
  Alcotest.(check bool) "outer restored" true (Deadline.active ());
  Deadline.check ()

let test_deadline_sequential_parallel () =
  Alcotest.check_raises "sequential map checks per element"
    Deadline.Exceeded (fun () ->
      Deadline.with_timeout ~seconds:1e-4 (fun () ->
          expire ();
          ignore (Parallel.map ~jobs:1 (fun x -> x + 1) (Array.make 16 0))))

let test_deadline_pooled () =
  if Domain.recommended_domain_count () < 2 then ()
  else begin
    let pool = Pool.create ~jobs:4 in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    Alcotest.check_raises "workers inherit the submitter's deadline"
      Deadline.Exceeded (fun () ->
        Deadline.with_timeout ~seconds:1e-4 (fun () ->
            expire ();
            Pool.run pool ~tasks:8 (fun _ -> ())))
  end

(* -- Synthetic registry for runner tests -------------------------------- *)

let synthetic_exp id =
  {
    Exp.id;
    title = "synthetic " ^ id;
    statement = "failure-path fixture";
    run =
      (fun cfg ->
        let rows =
          List.init 3 (fun i ->
              [ Table.Int i; Table.Int ((cfg.Config.seed + 1) * (i + 1)) ])
        in
        [ Table.make ~title:("table " ^ id) ~columns:[ "i"; "v" ] rows ]);
  }

let ids = [ "FS-alpha"; "FS-beta"; "FS-gamma"; "FS-delta" ]

let synthetic = List.map synthetic_exp ids

let cfg = Config.make ~jobs:1 Config.Fast

let with_fault id f =
  Unix.putenv "DUT_FAIL_EXPERIMENT" id;
  (* The empty string never matches an experiment id, so resetting to it
     disarms the hook (Unix has no unsetenv). *)
  Fun.protect ~finally:(fun () -> Unix.putenv "DUT_FAIL_EXPERIMENT" "") f

let run_all ?checkpoint_dir ?resume ?(cfg = cfg) () =
  let path = Filename.temp_file "dut_failsafe" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let report =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Runner.run_all_to_channel ~timings:false ?checkpoint_dir ?resume
          ~experiments:synthetic cfg oc)
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (report, really_input_string ic (in_channel_length ic)))

(* Split a run-all output into per-experiment sections keyed by the
   "# <id> — " header each slot starts with. *)
let sections output =
  let marker id = "# " ^ id ^ " \xe2\x80\x94 " in
  let positions =
    List.map
      (fun id ->
        match Astring.String.find_sub ~sub:(marker id) output with
        | Some p -> (id, p)
        | None -> Alcotest.fail ("missing section header for " ^ id))
      ids
  in
  let bounds = List.map snd positions @ [ String.length output ] in
  List.mapi
    (fun i (id, p) ->
      (id, String.sub output p (List.nth bounds (i + 1) - p)))
    positions

let temp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d" name (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

(* -- Runner: failure isolation ------------------------------------------ *)

let test_failure_isolation () =
  let clean_report, clean = run_all () in
  List.iter
    (fun o -> Alcotest.(check bool) "clean run has no failure" false (Runner.failed o))
    clean_report.Runner.experiments;
  let report, injected = with_fault "FS-beta" (fun () -> run_all ()) in
  let failures = List.filter Runner.failed report.Runner.experiments in
  (match failures with
  | [ o ] -> (
      Alcotest.(check string) "failed id" "FS-beta" o.Runner.id;
      match o.Runner.status with
      | Runner.Failed { exn; _ } ->
          Alcotest.(check bool) "error text names the injection" true
            (Astring.String.is_infix ~affix:"injected failure" exn)
      | _ -> Alcotest.fail "expected Failed status")
  | _ -> Alcotest.fail "expected exactly one failure");
  let clean_s = sections clean and injected_s = sections injected in
  List.iter
    (fun id ->
      let a = List.assoc id clean_s and b = List.assoc id injected_s in
      if id = "FS-beta" then begin
        Alcotest.(check bool) "failed slot renders an ERROR block" true
          (Astring.String.is_infix ~affix:"# ERROR in FS-beta" b);
        Alcotest.(check bool) "ERROR block names the exception" true
          (Astring.String.is_infix ~affix:"injected failure" b)
      end
      else
        Alcotest.(check string) ("section " ^ id ^ " byte-identical") a b)
    ids

let test_failure_jobs_invariance () =
  let _, at_one = with_fault "FS-beta" (fun () -> run_all ()) in
  let cfg4 = Config.make ~jobs:4 Config.Fast in
  let _, at_four =
    with_fault "FS-beta" (fun () -> run_all ~cfg:cfg4 ())
  in
  Alcotest.(check string) "failure output independent of --jobs" at_one
    at_four

let test_timeout_surfaces_as_failure () =
  let slow =
    {
      (synthetic_exp "FS-slow") with
      Exp.run =
        (fun _ ->
          ignore
            (Parallel.map ~jobs:1
               (fun () -> Unix.sleepf 0.002)
               (Array.make 500 ()));
          [] );
    }
  in
  let path = Filename.temp_file "dut_failsafe" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let outcome =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Runner.run_to_channel ~timings:false ~timeout_s:0.05 cfg slow oc)
  in
  match outcome.Runner.status with
  | Runner.Failed { exn; _ } ->
      Alcotest.(check bool) "reported as a timeout" true
        (Astring.String.is_infix ~affix:"timeout" exn)
  | _ -> Alcotest.fail "expected the watchdog to fail the experiment"

(* -- Checkpoint/resume -------------------------------------------------- *)

let test_checkpoint_resume_identical () =
  let dir = temp_dir "dut_ck_clean" in
  let _, first = run_all ~checkpoint_dir:dir () in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("checkpoint written for " ^ id) true
        (Sys.file_exists (Checkpoint.path ~dir id)))
    ids;
  let report, resumed = run_all ~checkpoint_dir:dir ~resume:true () in
  Alcotest.(check string) "resume replays byte-identically" first resumed;
  List.iter
    (fun o ->
      Alcotest.(check bool) ("replayed " ^ o.Runner.id) true
        o.Runner.resumed)
    report.Runner.experiments;
  Alcotest.(check (float 1e-9)) "replay costs no cpu this run" 0.
    report.Runner.cpu_seconds

let test_resume_reruns_only_failed () =
  let dir = temp_dir "dut_ck_failed" in
  let _, clean = run_all () in
  let report, _ =
    with_fault "FS-beta" (fun () -> run_all ~checkpoint_dir:dir ())
  in
  Alcotest.(check int) "one failure recorded" 1
    (List.length (List.filter Runner.failed report.Runner.experiments));
  Alcotest.(check bool) "failed experiment never checkpointed" false
    (Sys.file_exists (Checkpoint.path ~dir "FS-beta"));
  let report, resumed = run_all ~checkpoint_dir:dir ~resume:true () in
  Alcotest.(check string) "resume completes to the clean output" clean
    resumed;
  List.iter
    (fun o ->
      let expect_resumed = o.Runner.id <> "FS-beta" in
      Alcotest.(check bool)
        ("only the failed experiment re-ran: " ^ o.Runner.id)
        expect_resumed o.Runner.resumed;
      Alcotest.(check bool) "now ok" false (Runner.failed o))
    report.Runner.experiments

let test_checkpoint_staleness () =
  let dir = temp_dir "dut_ck_stale" in
  let key = Checkpoint.key_of_config ~csv:false ~timings:false cfg in
  Checkpoint.save ~dir ~key ~id:"FS-alpha" ~seconds:1.5 "payload bytes\n";
  (match Checkpoint.load ~dir ~key "FS-alpha" with
  | Some (payload, seconds) ->
      Alcotest.(check string) "payload round-trips" "payload bytes\n" payload;
      Alcotest.(check (float 1e-9)) "seconds round-trip" 1.5 seconds
  | None -> Alcotest.fail "fresh checkpoint failed to load");
  (* Any key difference invalidates: here the seed (and trials via the
     profile) differ. *)
  let other =
    Checkpoint.key_of_config ~csv:false ~timings:false
      (Config.make ~seed:999 ~jobs:1 Config.Fast)
  in
  Alcotest.(check bool) "stale key never replays" true
    (Checkpoint.load ~dir ~key:other "FS-alpha" = None);
  (* A truncated file never replays: the header's byte count disagrees. *)
  let file = Checkpoint.path ~dir "FS-alpha" in
  let content =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin file in
  output_string oc (String.sub content 0 (String.length content - 1));
  close_out oc;
  Alcotest.(check bool) "truncated checkpoint never replays" true
    (Checkpoint.load ~dir ~key "FS-alpha" = None);
  (* Garbage never replays (and never raises). *)
  let oc = open_out_bin file in
  output_string oc "not json\nnot payload";
  close_out oc;
  Alcotest.(check bool) "garbage checkpoint never replays" true
    (Checkpoint.load ~dir ~key "FS-alpha" = None)

(* -- Interruption ------------------------------------------------------- *)

let test_interrupt_renders_markers () =
  let report, output =
    Runner.with_sigint_guard (fun () ->
        Runner.request_interrupt ();
        run_all ())
  in
  Alcotest.(check bool) "flag cleared after the guard" false
    (Runner.interrupted ());
  List.iter
    (fun o ->
      Alcotest.(check bool) ("interrupted: " ^ o.Runner.id) true
        (o.Runner.status = Runner.Interrupted))
    report.Runner.experiments;
  List.iter
    (fun (id, s) ->
      Alcotest.(check bool) ("marker in slot " ^ id) true
        (Astring.String.is_infix ~affix:"# INTERRUPTED" s))
    (sections output)

let test_sigint_sets_flag () =
  Runner.with_sigint_guard (fun () ->
      Unix.kill (Unix.getpid ()) Sys.sigint;
      (* Delivery is asynchronous; give the runtime a moment. *)
      let deadline = Unix.gettimeofday () +. 2. in
      while (not (Runner.interrupted ())) && Unix.gettimeofday () < deadline do
        ignore (Sys.opaque_identity (ref 0));
        Unix.sleepf 0.001
      done;
      Alcotest.(check bool) "SIGINT requests interruption" true
        (Runner.interrupted ()));
  Alcotest.(check bool) "flag cleared after the guard" false
    (Runner.interrupted ())

(* -- Manifest status and atomic writes ---------------------------------- *)

let manifest_of experiments =
  Manifest.make ~command:"run-all" ~profile:"fast" ~seed:1 ~jobs:2
    ~jobs_requested:2 ~adaptive:true ~warm_start:true ~wall_seconds:1.
    ~cpu_seconds:1. ~experiments

let mexp ?error ?(resumed = false) id status =
  { Manifest.id; seconds = 0.1; status; resumed; error }

let test_manifest_run_status () =
  let status exps = Json.want_str (manifest_of exps) "status" in
  Alcotest.(check string) "all ok" "ok"
    (status [ mexp "a" "ok"; mexp "b" "ok" ]);
  Alcotest.(check string) "failure dominates ok" "failed"
    (status [ mexp "a" "ok"; mexp "b" "failed" ~error:"boom" ]);
  Alcotest.(check string) "interruption dominates failure" "interrupted"
    (status
       [ mexp "a" "ok"; mexp "b" "failed" ~error:"boom"; mexp "c" "interrupted" ]);
  Alcotest.(check bool) "jobs_requested omitted when equal" true
    (Json.field_opt (manifest_of [ mexp "a" "ok" ]) "jobs_requested" = None)

let test_write_atomic () =
  let dir = temp_dir "dut_atomic" in
  let path = Filename.concat dir "nested.json" in
  Manifest.write_atomic ~path "first";
  Manifest.write_atomic ~path "second";
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "last write wins, no partial states" "second"
    content;
  (* No temp droppings left behind. *)
  Alcotest.(check int) "directory holds only the target" 1
    (Array.length (Sys.readdir dir))

let () =
  Alcotest.run "failsafe"
    [
      ( "pool",
        [
          Alcotest.test_case "inline cancellation" `Quick
            test_inline_cancellation;
          Alcotest.test_case "pooled cancellation" `Quick
            test_pooled_cancellation;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "check/arm/disarm" `Quick test_deadline_check;
          Alcotest.test_case "nesting tightens" `Quick test_deadline_nesting;
          Alcotest.test_case "sequential combinators" `Quick
            test_deadline_sequential_parallel;
          Alcotest.test_case "pooled inheritance" `Quick test_deadline_pooled;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "failure isolated, others byte-identical" `Quick
            test_failure_isolation;
          Alcotest.test_case "failure output jobs-invariant" `Quick
            test_failure_jobs_invariance;
          Alcotest.test_case "timeout surfaces as failure" `Quick
            test_timeout_surfaces_as_failure;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume replays byte-identically" `Quick
            test_checkpoint_resume_identical;
          Alcotest.test_case "resume re-runs only failed" `Quick
            test_resume_reruns_only_failed;
          Alcotest.test_case "stale/corrupt never replays" `Quick
            test_checkpoint_staleness;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "request renders markers" `Quick
            test_interrupt_renders_markers;
          Alcotest.test_case "SIGINT sets the flag" `Quick
            test_sigint_sets_flag;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "run status derivation" `Quick
            test_manifest_run_status;
          Alcotest.test_case "atomic writes" `Quick test_write_atomic;
        ] );
    ]
