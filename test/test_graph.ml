(* Comparison-graph tests: construction, the edge statistic, the shared
   cutoff layer (including the Poisson / Cornish–Fisher handoff and the
   tie convention), bit-identity of the clique instances against the
   hand-written testers, the collisions_bounded path split, the
   rule-search envelope, and the service codec's graph queries. *)

module Cg = Dut_core.Comparison_graph

let with_reuse b f =
  Dut_engine.Scratch.set_reuse b;
  Fun.protect ~finally:(fun () -> Dut_engine.Scratch.set_reuse true) f

(* -- Construction ------------------------------------------------------- *)

let test_clique_counts () =
  let g = Cg.build ~q:6 Cg.Clique in
  Alcotest.(check int) "edges" 15 (Cg.edge_count g);
  Alcotest.(check int) "triangles" 20 (Cg.triangle_count g);
  Alcotest.(check int) "edge list" 15 (Array.length (Cg.edges g))

let test_matching_counts () =
  let g = Cg.build ~q:7 Cg.Matching in
  Alcotest.(check int) "edges" 3 (Cg.edge_count g);
  Alcotest.(check int) "triangles" 0 (Cg.triangle_count g);
  Array.iter
    (fun (u, v) -> Alcotest.(check int) "consecutive" (u + 1) v)
    (Cg.edges g)

let test_bipartite_counts () =
  let g = Cg.build ~q:7 Cg.Bipartite in
  Alcotest.(check int) "edges" 12 (Cg.edge_count g);
  Alcotest.(check int) "triangles" 0 (Cg.triangle_count g);
  Array.iter
    (fun (u, v) -> Alcotest.(check bool) "crosses the cut" true (u < 3 && v >= 3))
    (Cg.edges g)

let degrees g =
  let d = Array.make (Cg.q g) 0 in
  Array.iter
    (fun (u, v) ->
      d.(u) <- d.(u) + 1;
      d.(v) <- d.(v) + 1)
    (Cg.edges g);
  d

let test_regular_is_regular () =
  let g = Cg.build ~q:10 (Cg.Random_regular { degree = 4; seed = 7 }) in
  Alcotest.(check int) "edges" 20 (Cg.edge_count g);
  Array.iter (fun d -> Alcotest.(check int) "degree" 4 d) (degrees g);
  (* Odd degree with even q is feasible too (uses the q/2 chord). *)
  let g3 = Cg.build ~q:8 (Cg.Random_regular { degree = 3; seed = 7 }) in
  Array.iter (fun d -> Alcotest.(check int) "odd degree" 3 d) (degrees g3)

let test_regular_deterministic () =
  let edges seed =
    Cg.edges (Cg.build ~q:12 (Cg.Random_regular { degree = 4; seed }))
  in
  Alcotest.(check bool) "same seed, same graph" true (edges 3 = edges 3)

let test_regular_infeasible () =
  Alcotest.(check_raises) "degree too large"
    (Invalid_argument "Comparison_graph: regular degree outside [1, q-1]")
    (fun () -> ignore (Cg.build ~q:4 (Cg.Random_regular { degree = 4; seed = 1 })));
  Alcotest.(check_raises) "odd product"
    (Invalid_argument "Comparison_graph: regular graph needs q*degree even")
    (fun () -> ignore (Cg.build ~q:5 (Cg.Random_regular { degree = 3; seed = 1 })))

let test_explicit_validation () =
  Alcotest.(check_raises) "duplicate"
    (Invalid_argument "Comparison_graph.build: duplicate edge") (fun () ->
      ignore (Cg.build ~q:4 (Cg.Explicit [| (0, 1); (1, 0) |])));
  Alcotest.(check_raises) "self-loop"
    (Invalid_argument "Comparison_graph.build: self-loop") (fun () ->
      ignore (Cg.build ~q:4 (Cg.Explicit [| (2, 2) |])));
  Alcotest.(check_raises) "out of range"
    (Invalid_argument "Comparison_graph.build: edge endpoint outside [0,q)")
    (fun () -> ignore (Cg.build ~q:4 (Cg.Explicit [| (0, 4) |])))

(* Triangle counting against brute force over all vertex triples. *)
let brute_triangles g =
  let q = Cg.q g in
  let adj = Array.make_matrix q q false in
  Array.iter
    (fun (u, v) ->
      adj.(u).(v) <- true;
      adj.(v).(u) <- true)
    (Cg.edges g);
  let count = ref 0 in
  for a = 0 to q - 1 do
    for b = a + 1 to q - 1 do
      for c = b + 1 to q - 1 do
        if adj.(a).(b) && adj.(a).(c) && adj.(b).(c) then incr count
      done
    done
  done;
  !count

let test_triangle_count_brute_force () =
  List.iter
    (fun family ->
      let g = Cg.build ~q:10 family in
      Alcotest.(check int)
        (Cg.family_name family ^ " triangles")
        (brute_triangles g) (Cg.triangle_count g))
    [
      Cg.Matching;
      Cg.Bipartite;
      Cg.Random_regular { degree = 4; seed = 1 };
      Cg.Random_regular { degree = 6; seed = 2 };
      Cg.Explicit [| (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) |];
    ]

(* -- The statistic ------------------------------------------------------ *)

let brute_statistic g samples =
  Array.fold_left
    (fun acc (u, v) -> if samples.(u) = samples.(v) then acc + 1 else acc)
    0 (Cg.edges g)

let families_for_q q =
  [
    Cg.Clique;
    Cg.Matching;
    Cg.Bipartite;
    Cg.Explicit [| (0, 1) |];
  ]
  @ if q >= 5 && q mod 2 = 0 then [ Cg.Random_regular { degree = 4; seed = 1 } ] else []

let prop_statistic_matches_brute_force =
  QCheck.Test.make ~name:"graph statistic = explicit edge walk" ~count:200
    QCheck.(pair (int_range 2 24) small_int)
    (fun (q, seed) ->
      let rng = Dut_prng.Rng.create seed in
      let n = 32 in
      let samples = Array.init q (fun _ -> Dut_prng.Rng.int rng n) in
      List.for_all
        (fun family ->
          let g = Cg.build ~q family in
          Cg.statistic ~n g samples = brute_statistic g samples)
        (families_for_q q))

let test_statistic_length_check () =
  let g = Cg.build ~q:4 Cg.Matching in
  Alcotest.(check_raises) "length"
    (Invalid_argument "Comparison_graph.statistic: sample count <> q")
    (fun () -> ignore (Cg.statistic ~n:8 g [| 1; 2; 3 |]))

(* -- Cutoffs and the comparison convention ------------------------------ *)

let test_clique_cutoffs_bit_identical () =
  List.iter
    (fun (n, q, eps) ->
      let g = Cg.build ~q Cg.Clique in
      Alcotest.(check (float 0.)) "null mean"
        (Dut_core.Local_stat.null_mean ~n ~q)
        (Cg.null_mean ~n g);
      Alcotest.(check (float 0.)) "far mean"
        (Dut_core.Local_stat.far_mean ~n ~q ~eps)
        (Cg.far_mean ~n g ~eps);
      Alcotest.(check (float 0.)) "midpoint"
        (Dut_core.Local_stat.midpoint_cutoff ~n ~q ~eps)
        (Cg.midpoint_cutoff ~n g ~eps);
      Alcotest.(check int) "alarm"
        (Dut_core.Local_stat.alarm_cutoff ~n ~q ~false_alarm:0.01)
        (Cg.alarm_cutoff ~n g ~false_alarm:0.01))
    [ (64, 10, 0.3); (1024, 100, 0.25); (256, 1024, 0.4); (16, 2000, 0.5) ]

let test_tie_rejects () =
  (* The convention: accept strictly below the cutoff, a tie rejects. *)
  Alcotest.(check bool) "midpoint tie rejects" false
    (Dut_core.Local_stat.accepts_midpoint ~cutoff:5. 5);
  Alcotest.(check bool) "midpoint below accepts" true
    (Dut_core.Local_stat.accepts_midpoint ~cutoff:5. 4);
  Alcotest.(check bool) "alarm tie alarms" false
    (Dut_core.Local_stat.accepts_alarm ~cutoff:5 5);
  Alcotest.(check bool) "alarm below accepts" true
    (Dut_core.Local_stat.accepts_alarm ~cutoff:5 4)

let test_vote_convention_agrees () =
  (* Both vote paths and both statistic paths decide through the same
     comparison helpers: recomputing each verdict by hand must agree. *)
  let n = 64 and q = 40 and eps = 0.3 in
  let rng = Dut_prng.Rng.create 7 in
  for _ = 1 to 200 do
    let samples = Array.init q (fun _ -> Dut_prng.Rng.int rng n) in
    let c = Dut_core.Local_stat.collisions_bounded ~n samples in
    Alcotest.(check bool) "midpoint"
      (Dut_core.Local_stat.accepts_midpoint
         ~cutoff:(Dut_core.Local_stat.midpoint_cutoff ~n ~q ~eps)
         c)
      (Dut_core.Local_stat.vote_midpoint ~n ~q ~eps samples);
    Alcotest.(check bool) "alarm"
      (Dut_core.Local_stat.accepts_alarm
         ~cutoff:(Dut_core.Local_stat.alarm_cutoff ~n ~q ~false_alarm:0.05)
         c)
      (Dut_core.Local_stat.vote_alarm ~n ~q ~false_alarm:0.05 samples)
  done

(* The Poisson (mean <= 50) and Cornish–Fisher (mean > 50) regimes must
   agree to +-1 where they meet. The clique's mean sweeps continuously
   through the handoff as n varies, so compare the Poisson cutoff
   against the CF formula (replicated here) on means in (40, 50]. *)
let cf_cutoff ~n ~edges ~triangles ~false_alarm =
  let mean = edges /. float_of_int n in
  let nf = float_of_int n in
  let sigma = sqrt (mean *. (1. -. (1. /. nf))) in
  let mu3 = mean +. (6. *. triangles /. (nf *. nf)) in
  let gamma = mu3 /. (sigma ** 3.) in
  let z = Dut_stats.Tail.normal_isf false_alarm in
  int_of_float
    (ceil (mean +. (sigma *. (z +. (gamma *. ((z *. z) -. 1.) /. 6.)))))

let test_poisson_cf_handoff () =
  List.iter
    (fun false_alarm ->
      for q = 100 to 140 do
        let edges = float_of_int (q * (q - 1) / 2) in
        let triangles =
          float_of_int (q * (q - 1) * (q - 2) / 6)
        in
        (* n chosen so the null mean lands in (40, 50]. *)
        let n = int_of_float (ceil (edges /. 50.)) in
        let mean = edges /. float_of_int n in
        if mean > 40. && mean <= 50. then begin
          let poisson =
            Dut_core.Local_stat.alarm_cutoff_edges ~n ~edges ~triangles
              ~false_alarm
          in
          let cf = cf_cutoff ~n ~edges ~triangles ~false_alarm in
          if abs (poisson - cf) > 1 then
            Alcotest.failf
              "handoff: q=%d n=%d mean=%.2f p=%.3f poisson=%d cf=%d" q n mean
              false_alarm poisson cf
        end
      done)
    [ 0.1; 0.05; 0.02 ]

let test_cf_single_rounding () =
  (* The fixed rounding: when the CF quantile lands exactly on an
     integer the cutoff must equal it, not exceed it by one. With
     false_alarm = 0.5 the normal quantile term vanishes at z = 0, so
     the quantile is mean - sigma*gamma/6; scan for near-integer hits
     and check the cutoff is ceil(quantile), never ceil(quantile)+1. *)
  for q = 200 to 260 do
    let n = 256 in
    let g = Cg.build ~q Cg.Clique in
    let cut = Cg.alarm_cutoff ~n g ~false_alarm:0.5 in
    let edges = float_of_int (Cg.edge_count g) in
    let triangles = float_of_int (Cg.triangle_count g) in
    let mean = edges /. float_of_int n in
    if mean > 50. then begin
      let expected = cf_cutoff ~n ~edges ~triangles ~false_alarm:0.5 in
      Alcotest.(check int) (Printf.sprintf "q=%d" q) expected cut
    end
  done

(* -- Clique bit-identity with the hand-written testers ------------------ *)

let far_source ~ell ~eps =
  (* A fixed hard instance: alternating perturbation signs. *)
  let z = Array.init (1 lsl ell) (fun i -> if i land 1 = 0 then 1 else -1) in
  Dut_protocol.Network.of_paninski (Dut_dist.Paninski.create ~ell ~eps ~z)

let check_verdicts_identical name tester_a tester_b =
  let ell = 4 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  List.iter
    (fun reuse ->
      with_reuse reuse (fun () ->
          for seed = 0 to 99 do
            let sources =
              [ Dut_protocol.Network.uniform_source ~n; far_source ~ell ~eps ]
            in
            List.iteri
              (fun i source ->
                let a =
                  tester_a.Dut_core.Evaluate.accepts
                    (Dut_prng.Rng.create seed) source
                in
                let b =
                  tester_b.Dut_core.Evaluate.accepts
                    (Dut_prng.Rng.create seed) source
                in
                if a <> b then
                  Alcotest.failf "%s: verdicts differ (seed=%d source=%d reuse=%b)"
                    name seed i reuse)
              sources
          done))
    [ true; false ]

let test_clique_and_bit_identity () =
  let ell = 4 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 and k = 6 and q = 24 in
  check_verdicts_identical "and"
    (Dut_core.And_tester.tester ~n ~eps ~k ~q)
    (Cg.tester_and ~n ~eps ~k ~q Cg.Clique)

let test_clique_threshold_bit_identity () =
  let ell = 4 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 and k = 6 and q = 24 in
  check_verdicts_identical "threshold"
    (Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k ~q ~t:2)
    (Cg.tester_fixed ~n ~eps ~k ~q ~t:2 Cg.Clique)

let test_clique_majority_bit_identity () =
  let ell = 4 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 and k = 6 and q = 24 in
  (* Both calibrate from identically-seeded RNGs: the calibration draws,
     the referee cutoff, and every verdict must coincide. *)
  check_verdicts_identical "majority"
    (Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
       ~calibration_trials:100 ~rng:(Dut_prng.Rng.create 42))
    (Cg.tester_majority ~n ~eps ~k ~q ~calibration_trials:100
       ~rng:(Dut_prng.Rng.create 42) Cg.Clique)

(* -- collisions_bounded path split -------------------------------------- *)

let prop_collisions_bounded_path_split =
  (* Sort path vs scratch-histogram path across the universe-size
     boundary, with reuse on and off. *)
  let limit = 1 lsl 16 in
  QCheck.Test.make ~name:"collisions_bounded paths agree at the boundary"
    ~count:120
    QCheck.(triple (int_range 0 300) small_int bool)
    (fun (q, seed, reuse) ->
      let rng = Dut_prng.Rng.create seed in
      List.for_all
        (fun n ->
          (* Samples concentrated so collisions actually occur. *)
          let samples =
            Array.init q (fun _ -> Dut_prng.Rng.int rng (min n (max 1 (q / 2 + 1))))
          in
          let expected = Dut_core.Local_stat.collisions samples in
          with_reuse reuse (fun () ->
              Dut_core.Local_stat.collisions_bounded ~n samples = expected))
        [ limit - 1; limit; limit + 1 ])

(* -- Rule-search envelope ----------------------------------------------- *)

let envelope_inputs =
  QCheck.(
    triple (int_range 1 8) (float_range 0.01 0.99)
      (list_of_size (Gen.int_range 1 6) (float_range 0.01 0.99)))

let prop_envelope_convex =
  QCheck.Test.make ~name:"rule-search envelope is convex in lambda" ~count:200
    (QCheck.pair envelope_inputs (QCheck.pair (QCheck.float_range 0. 1.) (QCheck.float_range 0. 1.)))
    (fun ((k, a0, far), (l1, l2)) ->
      let a_far = Array.of_list far in
      let f l = Dut_core.Rule_search.envelope_value ~k ~a0 ~a_far l in
      f ((l1 +. l2) /. 2.) <= ((f l1 +. f l2) /. 2.) +. 1e-9)

let prop_best_rule_value_is_envelope_min =
  QCheck.Test.make ~name:"best_rule_value pins the envelope minimum" ~count:100
    envelope_inputs (fun (k, a0, far) ->
      let a_far = Array.of_list far in
      let best = Dut_core.Rule_search.best_rule_value ~k ~a0 ~a_far in
      let f l = Dut_core.Rule_search.envelope_value ~k ~a0 ~a_far l in
      (* Never above any envelope point (it is a min of the envelope)… *)
      let dominated =
        List.for_all
          (fun i -> best <= f (float_of_int i /. 40.) +. 1e-9)
          (List.init 41 Fun.id)
      in
      (* …and at least as good as a fine grid scan (the refinement only
         improves on the bracketing grid). *)
      let grid_min =
        List.fold_left
          (fun acc i -> Float.min acc (f (float_of_int i /. 2000.)))
          infinity (List.init 2001 Fun.id)
      in
      dominated && best <= grid_min +. 1e-9)

(* -- Service codec: graph queries --------------------------------------- *)

module J = Dut_obs.Json
module Q = Dut_service.Query

let roundtrip q =
  match J.parse (Q.canonical q) with
  | exception J.Malformed msg -> Alcotest.failf "canonical does not parse: %s" msg
  | j -> (
      match Q.of_json j with
      | Ok q' -> Alcotest.(check string) "roundtrip" (Q.canonical q) (Q.canonical q')
      | Error msg -> Alcotest.failf "roundtrip rejected: %s" msg)

let test_codec_graph_roundtrip () =
  List.iter
    (fun family ->
      roundtrip
        (Q.Power
           {
             tester = Q.Graph { family; t = 2 };
             ell = 4;
             eps = 0.4;
             k = 8;
             q = 16;
             trials = 40;
             level = 0.72;
             seed = 2019;
             adaptive = true;
           });
      roundtrip
        (Q.Critical
           {
             tester = Q.Graph { family; t = 1 };
             ell = 3;
             eps = 0.4;
             k = 8;
             trials = 40;
             level = 0.72;
             seed = 2019;
             adaptive = true;
             hi = Some 64;
             guess = None;
           }))
    [ Q.Clique; Q.Matching; Q.Bipartite; Q.Regular 4 ]

let test_codec_rejects_odd_degree () =
  match
    Q.of_json
      (J.parse
         {|{"kind":"power","tester":"graph","family":"regular","degree":3,"ell":4,"eps":0.4,"k":8,"q":16}|})
  with
  | Ok _ -> Alcotest.fail "odd degree accepted"
  | Error msg ->
      Alcotest.(check bool) "names the field" true
        (Astring.String.is_infix ~affix:"degree" msg)

let test_graph_query_eval_matches_threshold () =
  (* A clique graph query IS the threshold tester: eval must agree. *)
  let base tester =
    Q.Power
      {
        tester;
        ell = 4;
        eps = 0.35;
        k = 6;
        q = 20;
        trials = 60;
        level = 0.72;
        seed = 2019;
        adaptive = true;
      }
  in
  Alcotest.(check bool) "same verdict" true
    (Q.eval (base (Q.Graph { family = Q.Clique; t = 2 }))
    = Q.eval (base (Q.Threshold 2)))

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "dut_graph"
    [
      ( "construction",
        [
          Alcotest.test_case "clique counts" `Quick test_clique_counts;
          Alcotest.test_case "matching counts" `Quick test_matching_counts;
          Alcotest.test_case "bipartite counts" `Quick test_bipartite_counts;
          Alcotest.test_case "regular is regular" `Quick test_regular_is_regular;
          Alcotest.test_case "regular deterministic" `Quick
            test_regular_deterministic;
          Alcotest.test_case "regular infeasible" `Quick test_regular_infeasible;
          Alcotest.test_case "explicit validation" `Quick test_explicit_validation;
          Alcotest.test_case "triangles vs brute force" `Quick
            test_triangle_count_brute_force;
        ] );
      ( "statistic",
        [
          qcheck prop_statistic_matches_brute_force;
          Alcotest.test_case "length check" `Quick test_statistic_length_check;
        ] );
      ( "cutoffs",
        [
          Alcotest.test_case "clique = Local_stat (bit-identical)" `Quick
            test_clique_cutoffs_bit_identical;
          Alcotest.test_case "ties reject" `Quick test_tie_rejects;
          Alcotest.test_case "vote convention" `Quick test_vote_convention_agrees;
          Alcotest.test_case "Poisson/CF handoff +-1" `Quick
            test_poisson_cf_handoff;
          Alcotest.test_case "CF rounds up exactly once" `Quick
            test_cf_single_rounding;
        ] );
      ( "bit_identity",
        [
          Alcotest.test_case "and = graph clique" `Slow
            test_clique_and_bit_identity;
          Alcotest.test_case "threshold = graph clique" `Slow
            test_clique_threshold_bit_identity;
          Alcotest.test_case "majority = graph clique" `Slow
            test_clique_majority_bit_identity;
        ] );
      ( "kernels",
        [ qcheck prop_collisions_bounded_path_split ] );
      ( "rule_search",
        [
          qcheck prop_envelope_convex;
          qcheck prop_best_rule_value_is_envelope_min;
        ] );
      ( "service",
        [
          Alcotest.test_case "graph codec roundtrip" `Quick
            test_codec_graph_roundtrip;
          Alcotest.test_case "odd degree rejected" `Quick
            test_codec_rejects_odd_degree;
          Alcotest.test_case "clique query = threshold query" `Slow
            test_graph_query_eval_matches_threshold;
        ] );
    ]
