(* Tests for the hot-path overhaul: adaptive Monte-Carlo stopping,
   per-domain scratch arenas, and warm-started critical search.

   Two families of guarantees are exercised:
   - equivalence: the scratch-arena kernels reproduce the historical
     allocating paths bit for bit, and the seeded search returns the
     same answer as the cold one for every monotone predicate;
   - jobs-invariance: the adaptive estimator's estimate AND spend are
     identical for every jobs count. *)

let rng seed = Dut_prng.Rng.create seed

(* -- Adaptive stopping --------------------------------------------------- *)

let verdict_of_fixed ~level (ci : Dut_stats.Binomial_ci.t) =
  ci.estimate >= level

let test_adaptive_agrees_with_fixed_when_decisive () =
  (* For seeds and biases across both sides of the target, whenever the
     fixed-budget interval is decisive the adaptive verdict must match
     the fixed verdict. Deterministic: a fixed set of seeds. *)
  let trials = 200 and target = 0.5 in
  let checked = ref 0 in
  for seed = 0 to 149 do
    let p = if seed mod 2 = 0 then 0.2 else 0.8 in
    let event r = Dut_prng.Rng.unit_float r < p in
    let fixed = Dut_stats.Montecarlo.estimate_prob ~trials (rng seed) event in
    if fixed.lower > target || fixed.upper < target then begin
      incr checked;
      let adaptive =
        Dut_stats.Montecarlo.estimate_prob_adaptive ~max_trials:trials ~target
          (rng seed) event
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d verdict" seed)
        (verdict_of_fixed ~level:target fixed)
        (adaptive.ci.estimate >= target);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d stopped early" seed)
        true
        (adaptive.trials_used <= trials)
    end
  done;
  Alcotest.(check bool) "most fixed runs were decisive" true (!checked > 100)

let test_adaptive_full_budget_equals_fixed () =
  (* A bias pinned to the target never lets the interval separate, so
     the adaptive estimator must spend the whole budget and land on
     exactly the fixed estimate (same streams, same counts). *)
  let trials = 160 and target = 0.5 in
  let event r = Dut_prng.Rng.unit_float r < 0.5 in
  for seed = 0 to 19 do
    let fixed = Dut_stats.Montecarlo.estimate_prob ~trials (rng seed) event in
    let adaptive =
      Dut_stats.Montecarlo.estimate_prob_adaptive ~max_trials:trials ~target
        (rng seed) event
    in
    if adaptive.trials_used = trials then
      Alcotest.(check (float 0.))
        (Printf.sprintf "seed %d estimate" seed)
        fixed.estimate adaptive.ci.estimate
  done

let test_adaptive_jobs_invariant () =
  let est jobs =
    Dut_stats.Montecarlo.estimate_prob_adaptive ~jobs ~max_trials:500
      ~target:0.45 (rng 42) (fun r -> Dut_prng.Rng.unit_float r < 0.3)
  in
  let base = est 1 in
  Alcotest.(check bool)
    "adaptive stopped before the cap" true
    (base.trials_used < 500);
  List.iter
    (fun jobs ->
      let a = est jobs in
      Alcotest.(check (float 0.))
        (Printf.sprintf "estimate jobs=%d" jobs)
        base.ci.estimate a.ci.estimate;
      Alcotest.(check int)
        (Printf.sprintf "trials_used jobs=%d" jobs)
        base.trials_used a.trials_used)
    [ 2; 4 ]

(* -- Scratch kernels vs the allocating paths ----------------------------- *)

let test_random_scratch_equals_random () =
  List.iter
    (fun (ell, eps, seed) ->
      let a = Dut_dist.Paninski.random ~ell ~eps (rng seed) in
      let b = Dut_dist.Paninski.random_scratch ~ell ~eps (rng seed) in
      Alcotest.(check (array int))
        (Printf.sprintf "z (ell=%d seed=%d)" ell seed)
        (Dut_dist.Paninski.z a) (Dut_dist.Paninski.z b))
    [ (2, 0.3, 0); (5, 0.25, 1); (7, 0.3, 2); (7, 0.5, 3); (9, 0.25, 4) ]

let test_draw_many_into_equals_draw_many () =
  let hard = Dut_dist.Paninski.random ~ell:6 ~eps:0.3 (rng 9) in
  let expected = Dut_dist.Paninski.draw_many hard (rng 10) 777 in
  let buf = Array.make 777 (-1) in
  Dut_dist.Paninski.draw_many_into hard (rng 10) buf;
  Alcotest.(check (array int)) "paninski draws" expected buf;
  let sampler = Dut_dist.Sampler.of_pmf (Dut_dist.Pmf.uniform 97) in
  let expected = Dut_dist.Sampler.draw_many sampler (rng 11) 500 in
  let buf = Array.make 500 (-1) in
  Dut_dist.Sampler.draw_many_into sampler (rng 11) buf;
  Alcotest.(check (array int)) "sampler draws" expected buf

(* The seed repo's round: fresh sample tuples from Array.init. The
   scratch-buffer round must reproduce votes and verdict exactly. *)
let legacy_round ~rng ~source ~k ~q ~player ~rule =
  let votes =
    Array.init k (fun i ->
        let coins = Dut_prng.Rng.split rng in
        let samples = Array.init q (fun _ -> source coins) in
        player ~index:i coins samples)
  in
  (votes, Dut_protocol.Rule.apply rule votes)

let test_round_equals_legacy_allocating_round () =
  let n = 256 in
  let player ~index _coins samples =
    Dut_core.Local_stat.collisions samples < 3 + (index mod 2)
  in
  List.iter
    (fun (seed, rule) ->
      let expected_votes, expected_accept =
        legacy_round ~rng:(rng seed)
          ~source:(Dut_protocol.Network.uniform_source ~n)
          ~k:16 ~q:40 ~player ~rule
      in
      let t =
        Dut_protocol.Network.round ~rng:(rng seed)
          ~source:(Dut_protocol.Network.uniform_source ~n)
          ~k:16 ~q:40 ~player ~rule
      in
      Alcotest.(check (array bool)) "votes" expected_votes t.votes;
      Alcotest.(check bool) "accept" expected_accept t.accept)
    [
      (0, Dut_protocol.Rule.And);
      (1, Dut_protocol.Rule.Majority);
      (2, Dut_protocol.Rule.Reject_threshold 4);
    ]

(* Flipping Scratch reuse off routes every gated kernel (round sample
   buffers, counting-sort collisions, scratch hard instances, the
   counting referee, the single-sample referee) to its legacy
   allocating body. Both paths consume the same draws, so full
   evaluations must agree bit for bit — this is what lets the engine
   bench measure an honest "before" leg. Every refereed tester shape
   is covered. *)
let with_reuse b f =
  Dut_engine.Scratch.set_reuse b;
  Fun.protect ~finally:(fun () -> Dut_engine.Scratch.set_reuse true) f

let test_legacy_kernels_equal_scratch_kernels () =
  let check_tester name tester =
    let measure () =
      Dut_core.Evaluate.measure ~trials:40 ~rng:(rng 21) ~ell:6 ~eps:0.3 tester
    in
    let scratch = with_reuse true measure in
    let legacy = with_reuse false measure in
    Alcotest.(check (float 0.))
      (name ^ " uniform") scratch.uniform_accept.estimate
      legacy.uniform_accept.estimate;
    Alcotest.(check (float 0.))
      (name ^ " far") scratch.far_reject.estimate legacy.far_reject.estimate
  in
  check_tester "and" (Dut_core.And_tester.tester ~n:128 ~eps:0.3 ~k:8 ~q:48);
  check_tester "single-sample"
    (Dut_core.Single_sample.tester ~n:128 ~eps:0.3 ~k:300 ~bits:3);
  check_tester "threshold-majority"
    (Dut_core.Threshold_tester.tester_majority ~n:128 ~eps:0.3 ~k:8 ~q:48
       ~calibration_trials:30 ~rng:(rng 51));
  check_tester "threshold-fixed"
    (Dut_core.Threshold_tester.tester_fixed ~n:128 ~eps:0.3 ~k:8 ~q:64 ~t:2)

(* -- Counting referee ---------------------------------------------------- *)

let test_round_accept_equals_round () =
  let n = 256 in
  let source = Dut_protocol.Network.uniform_source ~n in
  let player ~index _coins samples =
    Dut_core.Local_stat.collisions samples < 3 + (index mod 2)
  in
  let parity votes =
    Array.fold_left (fun acc v -> acc + Bool.to_int v) 0 votes mod 2 = 0
  in
  List.iter
    (fun rule ->
      for seed = 0 to 9 do
        let t =
          Dut_protocol.Network.round ~rng:(rng seed) ~source ~k:16 ~q:40
            ~player ~rule
        in
        let accept =
          Dut_protocol.Network.round_accept ~rng:(rng seed) ~source ~k:16 ~q:40
            ~player ~rule
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d" (Dut_protocol.Rule.name rule) seed)
          t.accept accept
      done)
    [
      Dut_protocol.Rule.And; Dut_protocol.Rule.Or; Dut_protocol.Rule.Majority;
      Dut_protocol.Rule.Reject_threshold 4;
      Dut_protocol.Rule.Accept_at_least 9;
      (* Not count-decidable: round_accept must fall back to round. *)
      Dut_protocol.Rule.Custom ("parity", parity);
    ]

let prop_accept_min_matches_apply =
  (* For every count-decidable rule the referee's verdict must be the
     single integer compare [ones >= accept_min] on arbitrary votes. *)
  QCheck.Test.make ~name:"accept_min cutoff = Rule.apply" ~count:500
    QCheck.(
      pair (int_range 1 40) (list_of_size Gen.(int_range 1 40) bool))
    (fun (threshold, votes) ->
      let votes = Array.of_list votes in
      let k = Array.length votes in
      let ones = Array.fold_left (fun a v -> a + Bool.to_int v) 0 votes in
      List.for_all
        (fun rule ->
          Dut_protocol.Rule.count_decidable rule
          && Dut_protocol.Rule.apply rule votes
             = (ones >= Dut_protocol.Rule.accept_min rule ~k))
        [
          Dut_protocol.Rule.And; Dut_protocol.Rule.Or;
          Dut_protocol.Rule.Majority;
          Dut_protocol.Rule.Reject_threshold threshold;
          Dut_protocol.Rule.Accept_at_least threshold;
        ])

let test_custom_rule_not_count_decidable () =
  Alcotest.(check bool)
    "custom is not count-decidable" false
    (Dut_protocol.Rule.count_decidable
       (Dut_protocol.Rule.Custom ("any", fun _ -> true)));
  Alcotest.check_raises "accept_min on custom"
    (Invalid_argument "Rule.accept_min: custom rule has no count cutoff")
    (fun () ->
      ignore
        (Dut_protocol.Rule.accept_min
           (Dut_protocol.Rule.Custom ("any", fun _ -> true))
           ~k:4))

(* -- Batched draws ------------------------------------------------------- *)

let prop_sampler_draw_block_equals_scalar =
  QCheck.Test.make ~name:"Sampler.draw_block = scalar draws" ~count:200
    QCheck.(
      pair small_int (list_of_size Gen.(int_range 1 40) (int_range 1 100)))
    (fun (seed, weights) ->
      let total = float_of_int (List.fold_left ( + ) 0 weights) in
      let pmf =
        Dut_dist.Pmf.create
          (Array.of_list (List.map (fun w -> float_of_int w /. total) weights))
      in
      let s = Dut_dist.Sampler.of_pmf pmf in
      let a = rng seed and b = rng seed in
      let buf = Array.make 300 (-1) in
      Dut_dist.Sampler.draw_block s a buf;
      buf = Array.init 300 (fun _ -> Dut_dist.Sampler.draw s b)
      && Dut_prng.Rng.bits64 a = Dut_prng.Rng.bits64 b)

let prop_paninski_draw_block_equals_scalar =
  QCheck.Test.make ~name:"Paninski.draw_block = scalar draws" ~count:200
    QCheck.(pair small_int (int_range 0 8))
    (fun (seed, ell) ->
      let hard = Dut_dist.Paninski.random ~ell ~eps:0.3 (rng (seed + 1)) in
      let a = rng seed and b = rng seed in
      let buf = Array.make 257 (-1) in
      Dut_dist.Paninski.draw_block hard a buf;
      buf = Array.init 257 (fun _ -> Dut_dist.Paninski.draw hard b)
      && Dut_prng.Rng.bits64 a = Dut_prng.Rng.bits64 b)

let test_parallel_count_reuse_invariant () =
  (* The sequential scratch path of Parallel.count (borrowed child,
     split_into per index) must count exactly what the legacy split-per
     -index path counts. *)
  let pred r _i = Dut_prng.Rng.unit_float r < 0.4 in
  for seed = 0 to 9 do
    let count b =
      with_reuse b (fun () ->
          Dut_engine.Parallel.count ~jobs:1 ~rng:(rng seed) ~n:500 pred)
    in
    Alcotest.(check int)
      (Printf.sprintf "seed %d" seed)
      (count false) (count true)
  done

let test_measure_jobs_invariant () =
  (* The full evaluation path — scratch samples, scratch Paninski,
     histogram collision counts — at several jobs counts. *)
  let tester = Dut_core.And_tester.tester ~n:256 ~eps:0.3 ~k:8 ~q:64 in
  let measure jobs =
    Dut_engine.Parallel.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () ->
        Dut_engine.Parallel.set_default_jobs (Dut_engine.Parallel.env_jobs ()))
      (fun () ->
        Dut_core.Evaluate.measure ~trials:60 ~rng:(rng 5) ~ell:7 ~eps:0.3
          tester)
  in
  let base = measure 1 in
  List.iter
    (fun jobs ->
      let p = measure jobs in
      Alcotest.(check (float 0.))
        (Printf.sprintf "uniform jobs=%d" jobs)
        base.uniform_accept.estimate p.uniform_accept.estimate;
      Alcotest.(check (float 0.))
        (Printf.sprintf "far jobs=%d" jobs)
        base.far_reject.estimate p.far_reject.estimate)
    [ 2; 4 ]

let prop_collisions_bounded_equals_collisions =
  QCheck.Test.make ~name:"collisions_bounded = collisions" ~count:300
    QCheck.(
      pair (int_range 1 400) (list_of_size Gen.(int_range 0 120) (int_range 0 10_000)))
    (fun (n, xs) ->
      let samples = Array.of_list (List.map (fun x -> x mod n) xs) in
      Dut_core.Local_stat.collisions_bounded ~n samples
      = Dut_core.Local_stat.collisions (Array.copy samples))

let prop_hist_counts_match_naive =
  QCheck.Test.make ~name:"scratch histogram counts match a naive table"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 80) (int_range 0 63))
    (fun xs ->
      let h = Dut_engine.Scratch.hist ~size:64 in
      let naive = Array.make 64 0 in
      List.for_all
        (fun v ->
          naive.(v) <- naive.(v) + 1;
          Dut_engine.Scratch.bump h v = naive.(v))
        xs
      && List.for_all (fun v -> Dut_engine.Scratch.count h v = naive.(v)) xs)

(* -- Warm-started search ------------------------------------------------- *)

let prop_search_seeded_equals_search =
  QCheck.Test.make ~name:"search_seeded = search for monotone predicates"
    ~count:500
    QCheck.(triple (int_range 1 60) (int_range 1 2000) (int_range 1 2000))
    (fun (lo, width, guess) ->
      let hi = lo + width in
      (* Thresholds inside, at, and outside the bracket. *)
      List.for_all
        (fun m ->
          let ok q = q >= m in
          let cold = Dut_stats.Critical.search ~lo ~hi ok in
          let seeded = Dut_stats.Critical.search_seeded ~lo ~hi ~guess ok in
          cold = seeded)
        [ lo; lo + (width / 2); hi; hi + 1 ])

let test_search_seeded_counts_fewer_probes_when_guess_is_close () =
  (* The point of warm-starting: a near-answer guess brackets in a few
     probes where the cold search doubles all the way up. *)
  let m = 700 in
  let probes search =
    let count = ref 0 in
    let ok q =
      incr count;
      q >= m
    in
    ignore (search ok);
    !count
  in
  let cold = probes (fun ok -> Dut_stats.Critical.search ~lo:1 ~hi:100_000 ok) in
  let warm =
    probes (fun ok ->
        Dut_stats.Critical.search_seeded ~lo:1 ~hi:100_000 ~guess:750 ok)
  in
  Alcotest.(check bool)
    (Printf.sprintf "warm %d < cold %d" warm cold)
    true (warm < cold)

(* -- Jobs clamping ------------------------------------------------------- *)

let test_effective_jobs_clamps () =
  let cores = Domain.recommended_domain_count () in
  Alcotest.(check int) "1 stays 1" 1 (Dut_engine.Pool.effective_jobs 1);
  Alcotest.(check int) "cores stays cores" cores
    (Dut_engine.Pool.effective_jobs cores);
  Alcotest.(check int) "oversubscription clamps" cores
    (Dut_engine.Pool.effective_jobs (cores + 37));
  let cfg =
    Dut_experiments.Config.make ~jobs:(cores + 5) Dut_experiments.Config.Fast
  in
  Alcotest.(check int) "Config.make clamps" cores cfg.jobs

let () =
  Alcotest.run "dut_hotpath"
    [
      ( "adaptive",
        [
          Alcotest.test_case "agrees with fixed verdict when decisive" `Quick
            test_adaptive_agrees_with_fixed_when_decisive;
          Alcotest.test_case "full budget = fixed estimate" `Quick
            test_adaptive_full_budget_equals_fixed;
          Alcotest.test_case "jobs-invariant incl. trials_used" `Quick
            test_adaptive_jobs_invariant;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "random_scratch = random" `Quick
            test_random_scratch_equals_random;
          Alcotest.test_case "draw_many_into = draw_many" `Quick
            test_draw_many_into_equals_draw_many;
          Alcotest.test_case "round = legacy allocating round" `Quick
            test_round_equals_legacy_allocating_round;
          Alcotest.test_case "legacy kernels = scratch kernels" `Quick
            test_legacy_kernels_equal_scratch_kernels;
          Alcotest.test_case "measure jobs-invariant" `Quick
            test_measure_jobs_invariant;
        ] );
      ( "counting referee",
        [
          Alcotest.test_case "round_accept = round for every rule" `Quick
            test_round_accept_equals_round;
          Alcotest.test_case "custom rule has no cutoff" `Quick
            test_custom_rule_not_count_decidable;
          Alcotest.test_case "Parallel.count reuse-invariant" `Quick
            test_parallel_count_reuse_invariant;
        ] );
      ( "search",
        [
          Alcotest.test_case "warm guess saves probes" `Quick
            test_search_seeded_counts_fewer_probes_when_guess_is_close;
        ] );
      ( "clamping",
        [ Alcotest.test_case "effective_jobs" `Quick test_effective_jobs_clamps ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_collisions_bounded_equals_collisions;
            prop_hist_counts_match_naive;
            prop_search_seeded_equals_search;
            prop_accept_min_matches_apply;
            prop_sampler_draw_block_equals_scalar;
            prop_paninski_draw_block_equals_scalar;
          ] );
    ]
