(* Tests for dut_info: the Section 6 information-theoretic toolkit. *)

open Dut_info

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-4))

let test_kl_bits_matches_distance () =
  let p = Dut_dist.Pmf.create [| 0.5; 0.5 |] in
  let q = Dut_dist.Pmf.create [| 0.25; 0.75 |] in
  check_float "alias of Distance.kl" (Dut_dist.Distance.kl p q)
    (Divergence.kl_bits p q)

let test_kl_product_additivity () =
  (* Fact 6.2: summing coordinate divergences. *)
  check_float "sum" 0.6 (Divergence.kl_product [ 0.1; 0.2; 0.3 ]);
  check_float "empty" 0. (Divergence.kl_product [])

let test_kl_product_matches_joint () =
  (* Additivity against a literally constructed product distribution:
     D(P1xP2 || Q1xQ2) = D(P1||Q1) + D(P2||Q2). The joint over a 2x2
     universe is flattened to 4 outcomes. *)
  let joint (a : float array) (b : float array) =
    Dut_dist.Pmf.create
      [| a.(0) *. b.(0); a.(0) *. b.(1); a.(1) *. b.(0); a.(1) *. b.(1) |]
  in
  let p1 = [| 0.3; 0.7 |] and p2 = [| 0.6; 0.4 |] in
  let q1 = [| 0.5; 0.5 |] and q2 = [| 0.2; 0.8 |] in
  let lhs = Divergence.kl_bits (joint p1 p2) (joint q1 q2) in
  let rhs =
    Divergence.kl_product
      [
        Divergence.kl_bernoulli ~alpha:p1.(1) ~beta:q1.(1);
        Divergence.kl_bernoulli ~alpha:p2.(1) ~beta:q2.(1);
      ]
  in
  check_float_loose "Fact 6.2 joint" rhs lhs

let test_kl_bernoulli_zero () =
  check_float "same parameter" 0. (Divergence.kl_bernoulli ~alpha:0.37 ~beta:0.37)

let test_kl_bernoulli_known () =
  (* D(B(1/2) || B(1/4)) = 1 - 0.5 lg 3 ~ 0.20752 bits. *)
  check_float_loose "known value" 0.2075
    (Divergence.kl_bernoulli ~alpha:0.5 ~beta:0.25)

let test_chi2_bound_dominates () =
  let rng = Dut_prng.Rng.create 70 in
  for _ = 1 to 500 do
    let a = 0.001 +. (0.998 *. Dut_prng.Rng.unit_float rng) in
    let b = 0.001 +. (0.998 *. Dut_prng.Rng.unit_float rng) in
    if
      Divergence.kl_bernoulli ~alpha:a ~beta:b
      > Divergence.chi2_bound ~alpha:a ~beta:b +. 1e-9
    then Alcotest.failf "Fact 6.3 violated at a=%f b=%f" a b
  done

let test_success_requirement () =
  (* log2(3)/10 at delta = 1/3. *)
  check_float_loose "delta=1/3" (log (3.) /. log 2. /. 10.)
    (Divergence.success_divergence_requirement ~delta:(1. /. 3.));
  Alcotest.check_raises "delta out of range"
    (Invalid_argument "Divergence.success_divergence_requirement: delta out of (0,1)")
    (fun () -> ignore (Divergence.success_divergence_requirement ~delta:1.5))

let test_per_player_requirement_scales () =
  let d1 = Divergence.required_divergence_per_player ~k:1 ~delta:0.1 in
  let d10 = Divergence.required_divergence_per_player ~k:10 ~delta:0.1 in
  check_float "inverse in k" d1 (10. *. d10)

let test_budget_monotone_in_q () =
  let b q = Divergence.divergence_budget_bound ~q ~n:1024 ~eps:0.25 in
  Alcotest.(check bool) "increasing in q" true (b 10 < b 20 && b 20 < b 100)

let test_budget_decreasing_in_n () =
  let b n = Divergence.divergence_budget_bound ~q:50 ~n ~eps:0.25 in
  Alcotest.(check bool) "decreasing in n" true (b 1024 > b 4096)

let test_pinsker_bound () =
  check_float "zero KL" 0. (Divergence.pinsker_tv_bound ~kl_bits:0.);
  Alcotest.(check bool) "monotone" true
    (Divergence.pinsker_tv_bound ~kl_bits:0.1
    < Divergence.pinsker_tv_bound ~kl_bits:0.4)

let prop_kl_bernoulli_nonneg =
  QCheck.Test.make ~name:"Bernoulli KL is non-negative" ~count:300
    QCheck.(pair (float_range 0.01 0.99) (float_range 0.01 0.99))
    (fun (a, b) -> Divergence.kl_bernoulli ~alpha:a ~beta:b >= -1e-12)

let () =
  Alcotest.run "dut_info"
    [
      ( "divergence",
        [
          Alcotest.test_case "kl_bits alias" `Quick test_kl_bits_matches_distance;
          Alcotest.test_case "additivity sum" `Quick test_kl_product_additivity;
          Alcotest.test_case "additivity on joint" `Quick test_kl_product_matches_joint;
          Alcotest.test_case "bernoulli zero" `Quick test_kl_bernoulli_zero;
          Alcotest.test_case "bernoulli known" `Quick test_kl_bernoulli_known;
          Alcotest.test_case "Fact 6.3 dominates" `Quick test_chi2_bound_dominates;
          Alcotest.test_case "success requirement" `Quick test_success_requirement;
          Alcotest.test_case "per-player scaling" `Quick test_per_player_requirement_scales;
          Alcotest.test_case "budget monotone in q" `Quick test_budget_monotone_in_q;
          Alcotest.test_case "budget decreasing in n" `Quick test_budget_decreasing_in_n;
          Alcotest.test_case "pinsker" `Quick test_pinsker_bound;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_kl_bernoulli_nonneg ] );
    ]
