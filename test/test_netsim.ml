(* Tests for dut_netsim: graphs, BFS/spanning trees, the synchronous
   message-passing simulator, and the LOCAL-model uniformity tester. *)

open Dut_netsim

(* -- Graph ------------------------------------------------------------ *)

let test_create_and_neighbors () =
  let g = Graph.create 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check (list int)) "neighbors of 0" [ 1; 3 ] (Graph.neighbors g 0);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1);
  Alcotest.(check bool) "mem edge" true (Graph.mem_edge g 2 3);
  Alcotest.(check bool) "non edge" false (Graph.mem_edge g 0 2)

let test_create_errors () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create 3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.create: duplicate edge")
    (fun () -> ignore (Graph.create 3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.create: endpoint out of range") (fun () ->
      ignore (Graph.create 3 [ (0, 3) ]))

let test_topologies_shapes () =
  Alcotest.(check int) "path diameter" 9 (Graph.diameter (Graph.path 10));
  Alcotest.(check int) "star diameter" 2 (Graph.diameter (Graph.star 10));
  Alcotest.(check int) "complete diameter" 1 (Graph.diameter (Graph.complete 10));
  Alcotest.(check int) "cycle diameter" 5 (Graph.diameter (Graph.cycle 10));
  Alcotest.(check int) "grid diameter" 6 (Graph.diameter (Graph.grid 4 4));
  Alcotest.(check int) "path edges" 9 (Graph.edge_count (Graph.path 10));
  Alcotest.(check int) "complete edges" 45 (Graph.edge_count (Graph.complete 10))

let test_binary_tree_shape () =
  let g = Graph.binary_tree 7 in
  Alcotest.(check int) "edges" 6 (Graph.edge_count g);
  Alcotest.(check (list int)) "root children" [ 1; 2 ] (Graph.neighbors g 0);
  (* Depth of the complete binary tree on 7 nodes is 2; diameter 4. *)
  Alcotest.(check int) "diameter" 4 (Graph.diameter g)

let test_random_connected () =
  let rng = Dut_prng.Rng.create 200 in
  for _ = 1 to 20 do
    let n = 2 + Dut_prng.Rng.int rng 30 in
    let g = Graph.random_connected rng ~n ~extra_edges:(Dut_prng.Rng.int rng 10) in
    Alcotest.(check bool) "connected" true (Graph.is_connected g);
    Alcotest.(check bool) "enough edges" true (Graph.edge_count g >= n - 1)
  done

let test_bfs_distances () =
  let g = Graph.path 5 in
  let dist, parent = Graph.bfs g ~root:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] dist;
  Alcotest.(check (array int)) "parents" [| -1; 0; 1; 2; 3 |] parent

let test_bfs_disconnected () =
  let g = Graph.create 3 [ (0, 1) ] in
  let dist, _ = Graph.bfs g ~root:0 in
  Alcotest.(check bool) "unreachable" true (dist.(2) = max_int);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g)

let test_single_node () =
  let g = Graph.create 1 [] in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "diameter" 0 (Graph.diameter g)

(* -- Span_tree ---------------------------------------------------------- *)

let test_span_tree_path () =
  let t = Span_tree.of_graph (Graph.path 5) ~root:0 in
  Alcotest.(check int) "height" 4 t.Span_tree.height;
  Alcotest.(check (array int)) "depths" [| 0; 1; 2; 3; 4 |] t.Span_tree.depth;
  Alcotest.(check (list int)) "children of 1" [ 2 ] t.Span_tree.children.(1)

let test_span_tree_star () =
  let t = Span_tree.of_graph (Graph.star 6) ~root:0 in
  Alcotest.(check int) "height" 1 t.Span_tree.height;
  Alcotest.(check int) "root fan-out" 5 (List.length t.Span_tree.children.(0))

let test_span_tree_sizes () =
  let t = Span_tree.of_graph (Graph.path 4) ~root:0 in
  Alcotest.(check (array int)) "subtree sizes" [| 4; 3; 2; 1 |]
    (Span_tree.subtree_sizes t)

let test_span_tree_ancestor () =
  let t = Span_tree.of_graph (Graph.path 4) ~root:0 in
  Alcotest.(check bool) "root is ancestor" true (Span_tree.is_ancestor t 0 3);
  Alcotest.(check bool) "reflexive" true (Span_tree.is_ancestor t 2 2);
  Alcotest.(check bool) "not descendant" false (Span_tree.is_ancestor t 3 0)

let test_span_tree_disconnected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Span_tree.of_graph: disconnected graph") (fun () ->
      ignore (Span_tree.of_graph (Graph.create 2 []) ~root:0))

(* -- Sync_net ------------------------------------------------------------ *)

let test_flood_broadcast () =
  (* Node 0 floods a token; after diameter rounds everyone has it. *)
  let g = Graph.path 6 in
  let rng = Dut_prng.Rng.create 201 in
  let logic =
    {
      Sync_net.init = (fun node _ -> node = 0);
      step =
        (fun ~round:_ ~node _coins has inbox ->
          let has_now = has || inbox <> [] in
          if has_now then (true, List.map (fun v -> (v, ())) (Graph.neighbors g node))
          else (false, []));
    }
  in
  let states = Sync_net.run ~graph:g ~rng ~rounds:6 ~logic in
  Alcotest.(check bool) "all reached" true (Array.for_all Fun.id states)

let test_rounds_limit_propagation () =
  (* With too few rounds the token cannot reach the far end. *)
  let g = Graph.path 6 in
  let rng = Dut_prng.Rng.create 202 in
  let logic =
    {
      Sync_net.init = (fun node _ -> node = 0);
      step =
        (fun ~round:_ ~node _coins has inbox ->
          let has_now = has || inbox <> [] in
          if has_now then (true, List.map (fun v -> (v, ())) (Graph.neighbors g node))
          else (false, []));
    }
  in
  let states = Sync_net.run ~graph:g ~rng ~rounds:3 ~logic in
  Alcotest.(check bool) "node 5 not reached in 3 rounds" false states.(5)

let test_non_neighbor_rejected () =
  let g = Graph.path 3 in
  let rng = Dut_prng.Rng.create 203 in
  let logic =
    {
      Sync_net.init = (fun _ _ -> ());
      step = (fun ~round:_ ~node _ () _ -> if node = 0 then ((), [ (2, ()) ]) else ((), []));
    }
  in
  Alcotest.check_raises "non-neighbor"
    (Invalid_argument "Sync_net.run: node 0 sent to non-neighbor 2") (fun () ->
      ignore (Sync_net.run ~graph:g ~rng ~rounds:1 ~logic))

let test_message_counter () =
  let g = Graph.complete 4 in
  let rng = Dut_prng.Rng.create 204 in
  let logic =
    {
      Sync_net.init = (fun _ _ -> ());
      step =
        (fun ~round:_ ~node _ () _ ->
          ((), List.map (fun v -> (v, ())) (Graph.neighbors g node)));
    }
  in
  Sync_net.reset_counters ();
  ignore (Sync_net.run ~graph:g ~rng ~rounds:2 ~logic);
  (* 4 nodes x 3 neighbors x 2 rounds. *)
  Alcotest.(check int) "messages" 24 (Sync_net.messages_sent ())

let test_deterministic_execution () =
  let g = Graph.cycle 5 in
  let run seed =
    let rng = Dut_prng.Rng.create seed in
    let logic =
      {
        Sync_net.init = (fun _ coins -> Dut_prng.Rng.int coins 1000);
        step =
          (fun ~round:_ ~node:_ coins state inbox ->
            (state + List.fold_left ( + ) (Dut_prng.Rng.int coins 10) inbox, []));
      }
    in
    Sync_net.run ~graph:g ~rng ~rounds:3 ~logic
  in
  Alcotest.(check (array int)) "same seed, same states" (run 5) (run 5)

(* -- Local_tester --------------------------------------------------------- *)

let test_local_tester_power_and_costs () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let graph = Dut_netsim.Graph.grid 4 4 in
  let k = Graph.n graph in
  let q = 4 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 205 in
  let t =
    Local_tester.make ~graph ~n ~eps ~q ~calibration_trials:200
      ~rng:(Dut_prng.Rng.split rng)
  in
  (* Power. *)
  let trials = 60 in
  let ok_unif = ref 0 and ok_far = ref 0 in
  for _ = 1 to trials do
    let r = Dut_prng.Rng.split rng in
    let ru = Local_tester.run t r (Dut_protocol.Network.uniform_source ~n) in
    if ru.accept then incr ok_unif;
    Alcotest.(check bool) "verdict propagates" true ru.all_agree;
    Alcotest.(check int) "round budget" ((2 * Local_tester.height t) + 1) ru.rounds;
    (* One count and one verdict per tree edge. *)
    Alcotest.(check int) "messages = 2(k-1)" (2 * (k - 1)) ru.messages;
    (* Subtree counts fit in lg(k+1) bits: CONGEST-compatible. *)
    if ru.max_message_bits > 5 then
      Alcotest.failf "message too wide for CONGEST: %d bits" ru.max_message_bits;
    Alcotest.(check int) "local time" (q + ru.rounds) ru.local_time;
    let d = Dut_dist.Paninski.random ~ell ~eps r in
    if not (Local_tester.run t r (Dut_protocol.Network.of_paninski d)).accept then
      incr ok_far
  done;
  if float_of_int !ok_unif /. float_of_int trials < 0.7 then
    Alcotest.failf "uniform acceptance too low (%d/%d)" !ok_unif trials;
  if float_of_int !ok_far /. float_of_int trials < 0.7 then
    Alcotest.failf "far rejection too low (%d/%d)" !ok_far trials

let test_local_tester_single_node () =
  (* Degenerate network: one node, zero communication. *)
  let rng = Dut_prng.Rng.create 206 in
  let graph = Graph.create 1 [] in
  let n = 64 in
  let t =
    Local_tester.make ~graph ~n ~eps:0.3 ~q:500 ~calibration_trials:100
      ~rng:(Dut_prng.Rng.split rng)
  in
  let r = Local_tester.run t rng (Dut_protocol.Network.uniform_source ~n) in
  Alcotest.(check int) "no messages" 0 r.messages;
  Alcotest.(check bool) "decides" true r.all_agree

let test_local_tester_errors () =
  let rng = Dut_prng.Rng.create 207 in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Span_tree.of_graph: disconnected graph") (fun () ->
      ignore
        (Local_tester.make ~graph:(Graph.create 2 []) ~n:64 ~eps:0.3 ~q:10
           ~calibration_trials:10 ~rng))

(* -- Gossip ---------------------------------------------------------------- *)

let test_push_sum_conserves_mass () =
  (* The sum of value/weight-weighted contributions is conserved: on a
     connected graph the estimates approach the average. *)
  let rng = Dut_prng.Rng.create 230 in
  let g = Graph.complete 16 in
  let values = Array.init 16 float_of_int in
  let truth = 7.5 in
  let estimates = Gossip.push_sum ~graph:g ~rng ~values ~rounds:60 in
  Array.iter
    (fun e ->
      if Float.abs (e -. truth) > 0.05 then
        Alcotest.failf "estimate %f far from %f" e truth)
    estimates

let test_push_sum_zero_rounds () =
  let rng = Dut_prng.Rng.create 231 in
  let g = Graph.path 4 in
  let values = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (array (float 1e-9))) "identity at zero rounds" values
    (Gossip.push_sum ~graph:g ~rng ~values ~rounds:0)

let test_push_sum_constant_input () =
  let rng = Dut_prng.Rng.create 232 in
  let g = Graph.cycle 8 in
  let estimates =
    Gossip.push_sum ~graph:g ~rng ~values:(Array.make 8 3.) ~rounds:25
  in
  Array.iter (fun e -> Alcotest.(check (float 1e-9)) "constant stays" 3. e) estimates

let test_push_sum_errors () =
  let rng = Dut_prng.Rng.create 233 in
  Alcotest.check_raises "value count"
    (Invalid_argument "Gossip.push_sum: one value per node required") (fun () ->
      ignore (Gossip.push_sum ~graph:(Graph.path 3) ~rng ~values:[| 1. |] ~rounds:1))

let test_rounds_to_tolerance_orders_topologies () =
  (* Gossip mixes faster on a clique than on a path. *)
  let rng = Dut_prng.Rng.create 234 in
  let values = Array.init 16 (fun i -> if i < 8 then 1. else 0.) in
  let rounds g =
    match
      Gossip.rounds_to_tolerance ~graph:g ~rng:(Dut_prng.Rng.split rng) ~values
        ~tol:0.05 ~max_rounds:5000
    with
    | Some r -> r
    | None -> Alcotest.fail "did not converge"
  in
  let clique = rounds (Graph.complete 16) in
  let path = rounds (Graph.path 16) in
  Alcotest.(check bool)
    (Printf.sprintf "clique (%d) mixes faster than path (%d)" clique path)
    true (clique < path)

let test_decentralized_tester_power () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let graph = Graph.grid 4 4 in
  let k = Graph.n graph in
  let q = 5 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 235 in
  let tester =
    Gossip.decentralized_tester ~graph ~n ~eps ~q ~gossip_rounds:120
      ~calibration_trials:200 ~rng:(Dut_prng.Rng.split rng)
  in
  let p = Dut_core.Evaluate.measure ~trials:60 ~rng ~ell ~eps tester in
  Alcotest.(check bool)
    (Printf.sprintf "refereeless tester works (unif %.2f, far %.2f)"
       p.uniform_accept.estimate p.far_reject.estimate)
    true
    (Float.min p.uniform_accept.estimate p.far_reject.estimate >= 0.7)

let prop_topologies_connected =
  QCheck.Test.make ~name:"standard topologies are connected" ~count:50
    QCheck.(int_range 3 40)
    (fun k ->
      List.for_all Graph.is_connected
        [ Graph.path k; Graph.cycle k; Graph.star k; Graph.complete k;
          Graph.binary_tree k ])

let prop_bfs_distance_triangle =
  QCheck.Test.make ~name:"BFS distances drop by exactly 1 along parents" ~count:50
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, k) ->
      let rng = Dut_prng.Rng.create seed in
      let g = Graph.random_connected rng ~n:k ~extra_edges:k in
      let dist, parent = Graph.bfs g ~root:0 in
      Array.for_all Fun.id
        (Array.mapi
           (fun v p -> if p < 0 then true else dist.(v) = dist.(p) + 1)
           parent))

let () =
  Alcotest.run "dut_netsim"
    [
      ( "graph",
        [
          Alcotest.test_case "create/neighbors" `Quick test_create_and_neighbors;
          Alcotest.test_case "errors" `Quick test_create_errors;
          Alcotest.test_case "topology shapes" `Quick test_topologies_shapes;
          Alcotest.test_case "binary tree" `Quick test_binary_tree_shape;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "single node" `Quick test_single_node;
        ] );
      ( "span_tree",
        [
          Alcotest.test_case "path" `Quick test_span_tree_path;
          Alcotest.test_case "star" `Quick test_span_tree_star;
          Alcotest.test_case "subtree sizes" `Quick test_span_tree_sizes;
          Alcotest.test_case "ancestor" `Quick test_span_tree_ancestor;
          Alcotest.test_case "disconnected" `Quick test_span_tree_disconnected;
        ] );
      ( "sync_net",
        [
          Alcotest.test_case "flood reaches everyone" `Quick test_flood_broadcast;
          Alcotest.test_case "round limit" `Quick test_rounds_limit_propagation;
          Alcotest.test_case "non-neighbor rejected" `Quick test_non_neighbor_rejected;
          Alcotest.test_case "message counter" `Quick test_message_counter;
          Alcotest.test_case "deterministic" `Quick test_deterministic_execution;
        ] );
      ( "local_tester",
        [
          Alcotest.test_case "power and costs" `Slow test_local_tester_power_and_costs;
          Alcotest.test_case "single node" `Quick test_local_tester_single_node;
          Alcotest.test_case "errors" `Quick test_local_tester_errors;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "converges to the average" `Quick test_push_sum_conserves_mass;
          Alcotest.test_case "zero rounds" `Quick test_push_sum_zero_rounds;
          Alcotest.test_case "constant input" `Quick test_push_sum_constant_input;
          Alcotest.test_case "errors" `Quick test_push_sum_errors;
          Alcotest.test_case "topology ordering" `Quick
            test_rounds_to_tolerance_orders_topologies;
          Alcotest.test_case "refereeless tester power" `Slow
            test_decentralized_tester_power;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_topologies_connected; prop_bfs_distance_triangle ] );
    ]
