(* Tests for Dut_obs: counter aggregation across pool domains, the
   jobs-invariance contract of the Monte-Carlo / critical-search
   tallies, span nesting and JSONL validity, the manifest schema, and
   the out-of-band guarantee — stdout byte-identical with and without
   a trace sink. *)

open Dut_obs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let read_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let with_temp name f =
  let path = Filename.temp_file "dut_obs_test" name in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () -> f path

(* -- Json -------------------------------------------------------------- *)

let json = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("count", Json.int 42);
        ("pi", Json.Num 3.5);
        ("neg", Json.int (-7));
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.Arr [ Json.int 1; Json.Str "two"; Json.Bool false ]);
        ("empty_obj", Json.Obj []);
        ("empty_arr", Json.Arr []);
      ]
  in
  Alcotest.check json "roundtrip" v (Json.parse (Json.to_string v));
  (* Integers render without a decimal point — the trace/manifest files
     stay greppable with integer tooling. *)
  Alcotest.(check string) "int rendering" "7" (Json.to_string (Json.int 7));
  (* Non-finite numbers degrade to null rather than emitting invalid JSON. *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Num Float.nan));
  (match Json.parse "null x" with
  | exception Json.Malformed _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted")

(* -- Counters ---------------------------------------------------------- *)

let test_counter_sum_across_domains () =
  let c = Metrics.counter "test.obs.domain_sum" in
  let before = Metrics.value "test.obs.domain_sum" in
  let pool = Dut_engine.Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Dut_engine.Pool.shutdown pool) @@ fun () ->
  Dut_engine.Pool.run pool ~tasks:500 (fun _ -> Metrics.incr c);
  (* The pool join is the aggregation point: every per-domain tally is
     published, the snapshot sum is exact. *)
  Alcotest.(check int) "sum over domains" 500
    (Metrics.value "test.obs.domain_sum" - before);
  Alcotest.(check bool) "snapshot carries it" true
    (List.exists
       (fun (n, v) ->
         n = "test.obs.domain_sum" && v = Metrics.Count (before + 500))
       (Metrics.snapshot ()))

let pool_claims_delta ~jobs ~tasks =
  let before = Metrics.value "pool.tasks_claimed" in
  let pool = Dut_engine.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Dut_engine.Pool.shutdown pool) @@ fun () ->
  Dut_engine.Pool.run pool ~tasks (fun _ -> ());
  Metrics.value "pool.tasks_claimed" - before

let test_pool_claims_sum_consistent () =
  (* pool.tasks_claimed is schedule-dependent per domain, but its sum
     is the number of tasks — on the inline jobs=1 path and the
     multi-domain path alike. *)
  Alcotest.(check int) "jobs=1 claims" 137 (pool_claims_delta ~jobs:1 ~tasks:137);
  Alcotest.(check int) "jobs=4 claims" 137 (pool_claims_delta ~jobs:4 ~tasks:137)

(* -- Jobs-invariance of the stats tallies ------------------------------ *)

(* One critical search whose predicate is an adaptive Monte-Carlo
   estimate: the engine's determinism contract promises the answer and
   the mc.*/search.* tallies are bit-identical for every jobs count. *)
let search_leg ~jobs =
  let rng = Dut_prng.Rng.create 42 in
  let t0 = Metrics.value "mc.trials_used" in
  let e0 = Metrics.value "mc.adaptive_early_stops" in
  let p0 = Metrics.value "search.probes" in
  let answer =
    Dut_stats.Critical.search ~lo:1 ~hi:4096 (fun q ->
        let a =
          Dut_stats.Montecarlo.estimate_prob_adaptive ~jobs ~max_trials:160
            ~target:0.7 (Dut_prng.Rng.split rng) (fun r ->
              Dut_prng.Rng.unit_float r < 0.2 +. (0.7 *. float_of_int q /. 4096.))
        in
        a.Dut_stats.Montecarlo.ci.Dut_stats.Binomial_ci.estimate >= 0.7)
  in
  ( answer,
    Metrics.value "mc.trials_used" - t0,
    Metrics.value "mc.adaptive_early_stops" - e0,
    Metrics.value "search.probes" - p0 )

let test_jobs_invariant_tallies () =
  let a1, t1, e1, p1 = search_leg ~jobs:1 in
  let a4, t4, e4, p4 = search_leg ~jobs:4 in
  Alcotest.(check bool) "search found a critical value" true (a1 <> None);
  Alcotest.(check bool) "same answer" true (a1 = a4);
  Alcotest.(check int) "mc.trials_used invariant" t1 t4;
  Alcotest.(check int) "mc.adaptive_early_stops invariant" e1 e4;
  Alcotest.(check int) "search.probes invariant" p1 p4;
  Alcotest.(check bool) "trials were spent" true (t1 > 0);
  Alcotest.(check bool) "probes were spent" true (p1 > 0)

(* -- Histograms -------------------------------------------------------- *)

let hist_of_list vs =
  let h = Histogram.create () in
  List.iter (Histogram.record h) vs;
  h

let prop_hist_merge_assoc_comm =
  QCheck.Test.make ~name:"histogram merge is associative and commutative"
    ~count:200
    QCheck.(triple (list int) (list int) (list int))
    (fun (xs, ys, zs) ->
      let a = hist_of_list xs and b = hist_of_list ys and c = hist_of_list zs in
      Histogram.equal
        (Histogram.merge a (Histogram.merge b c))
        (Histogram.merge (Histogram.merge a b) c)
      && Histogram.equal (Histogram.merge a b) (Histogram.merge b a)
      && Histogram.equal
           (Histogram.merge a b)
           (hist_of_list (xs @ ys)))

let prop_hist_buckets_bracket =
  QCheck.Test.make
    ~name:"bucket_of is monotone and lo <= v <= hi brackets every value"
    ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (v1, v2) ->
      let lo_v = min v1 v2 and hi_v = max v1 v2 in
      let b = Histogram.bucket_of lo_v in
      Histogram.bucket_of lo_v <= Histogram.bucket_of hi_v
      && Histogram.bucket_lo b <= lo_v
      && lo_v <= Histogram.bucket_hi b)

let prop_hist_quantile_brackets_exact =
  QCheck.Test.make
    ~name:"quantile bucket brackets the exact sorted-sample quantile"
    ~count:300
    QCheck.(pair
              (list_of_size Gen.(int_range 1 200) (int_bound 10_000_000))
              (float_range 0. 1.))
    (fun (vs, q) ->
      let h = hist_of_list vs in
      let sorted = List.sort compare vs in
      let n = List.length vs in
      let rank =
        let r = int_of_float (ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let exact = List.nth sorted (rank - 1) in
      match Histogram.quantile_bucket h q with
      | None -> false
      | Some b ->
          Histogram.bucket_lo b <= exact && exact <= Histogram.bucket_hi b)

let test_histogram_small_values_exact () =
  (* Values 0..15 are unit buckets: quantiles there are exact, and the
     summary carries the exact count and max. *)
  let h = hist_of_list [ 3; 3; 7; 12 ] in
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check int) "p50 exact" 3 (Histogram.q_or_zero h 0.5);
  Alcotest.(check int) "p99 exact" 12 (Histogram.q_or_zero h 0.99);
  Alcotest.(check (option int)) "max" (Some 12) (Histogram.max_value h);
  (* diff is the interval statistic between two snapshots. *)
  let later = Histogram.copy h in
  Histogram.record later 7;
  Histogram.record later 100;
  let d = Histogram.diff later h in
  Alcotest.(check int) "diff count" 2 (Histogram.count d);
  Alcotest.(check int) "reverse diff clamps to empty" 0
    (Histogram.count (Histogram.diff h later));
  (* Negative observations clamp to bucket 0. *)
  let neg = hist_of_list [ -5 ] in
  Alcotest.(check int) "negative clamps" 0 (Histogram.q_or_zero neg 1.0);
  (* Empty summary is the bare count. *)
  Alcotest.check json "empty summary"
    (Json.Obj [ ("count", Json.Num 0.) ])
    (Histogram.summary_json (Histogram.create ()))

let prop_hist_json_roundtrip =
  QCheck.Test.make
    ~name:"to_json/of_json is an exact roundtrip (the fleet-merge codec)"
    ~count:200
    QCheck.(list (int_bound 1_000_000_000))
    (fun vs ->
      let h = hist_of_list vs in
      Histogram.equal h (Histogram.of_json (Histogram.to_json h)))

let test_histogram_json_malformed () =
  List.iter
    (fun j ->
      match Histogram.of_json j with
      | exception Json.Malformed _ -> ()
      | _ -> Alcotest.failf "accepted malformed buckets %s" (Json.to_string j))
    [
      Json.Num 3.;
      Json.Arr [ Json.Num 1. ];
      Json.Arr [ Json.Arr [ Json.Num 1. ] ];
      Json.Arr [ Json.Arr [ Json.Num (-1.); Json.Num 2. ] ];
      Json.Arr [ Json.Arr [ Json.Num 1e9; Json.Num 2. ] ];
      Json.Arr [ Json.Arr [ Json.Num 1.; Json.Num (-2.) ] ];
    ]

let pool_task_hist_delta ~jobs ~tasks =
  let before = Histogram.count (Metrics.histogram_value "pool.task_ns") in
  let pool = Dut_engine.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Dut_engine.Pool.shutdown pool) @@ fun () ->
  Dut_engine.Pool.run pool ~tasks (fun _ -> ignore (Sys.opaque_identity 0));
  Histogram.count (Metrics.histogram_value "pool.task_ns") - before

let test_pool_task_ns_sum_consistent () =
  (* pool.task_ns durations are schedule-dependent, but the observation
     count is the task count — on the inline jobs=1 path and the
     multi-domain path alike (the same contract pool.tasks_claimed
     pins). *)
  Alcotest.(check int) "jobs=1 task observations" 89
    (pool_task_hist_delta ~jobs:1 ~tasks:89);
  Alcotest.(check int) "jobs=4 task observations" 89
    (pool_task_hist_delta ~jobs:4 ~tasks:89)

(* -- Clock ------------------------------------------------------------- *)

let test_now_ns_monotone_across_domains () =
  (* The CAS max-clamp in Span.now_ns gives a process-wide monotone
     clock: non-decreasing within each domain, and a read after joining
     a domain can never be behind anything that domain saw. *)
  let reads_per_domain = 5_000 in
  let domains =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let prev = ref (Span.now_ns ()) in
            let monotone = ref true in
            for _ = 1 to reads_per_domain do
              let t = Span.now_ns () in
              if t < !prev then monotone := false;
              prev := t
            done;
            (!monotone, !prev)))
  in
  let results = Array.map Domain.join domains in
  Array.iter
    (fun (monotone, _) ->
      Alcotest.(check bool) "non-decreasing within a domain" true monotone)
    results;
  let after_join = Span.now_ns () in
  Array.iter
    (fun (_, domain_max) ->
      Alcotest.(check bool) "post-join read covers every domain" true
        (after_join >= domain_max))
    results

(* -- Spans ------------------------------------------------------------- *)

let span_records path =
  List.map
    (fun line ->
      let j = Json.parse line in
      ( int_of_float (Json.want_num j "span"),
        ( Json.want_str j "name",
          Json.field_opt j "parent",
          int_of_float (Json.want_num j "start_ns"),
          int_of_float (Json.want_num j "dur_ns"),
          Json.field_opt j "raised" <> None ) ))
    (read_lines path)

let test_span_nesting_and_jsonl () =
  with_temp ".jsonl" @@ fun path ->
  Span.set_sink (Some path);
  Alcotest.(check bool) "sink open" true (Span.enabled ());
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner"
        ~attrs:[ ("k", Json.Str "v") ]
        (fun () -> ignore (Sys.opaque_identity 0));
      try Span.with_ ~name:"boom" (fun () -> raise Exit) with Exit -> ());
  Span.set_sink None;
  Alcotest.(check bool) "sink closed" false (Span.enabled ());
  let spans = span_records path in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name =
    let id, (_, parent, start, dur, raised) =
      List.find (fun (_, (n, _, _, _, _)) -> n = name) spans
    in
    (id, parent, start, dur, raised)
  in
  let outer_id, outer_parent, outer_start, outer_dur, _ = find "outer" in
  let _, inner_parent, inner_start, inner_dur, inner_raised = find "inner" in
  let _, boom_parent, _, _, boom_raised = find "boom" in
  Alcotest.check json "outer is a root" Json.Null
    (Option.value ~default:Json.Null outer_parent);
  Alcotest.check json "inner child of outer" (Json.int outer_id)
    (Option.get inner_parent);
  Alcotest.check json "boom child of outer" (Json.int outer_id)
    (Option.get boom_parent);
  Alcotest.(check bool) "raised flagged" true boom_raised;
  Alcotest.(check bool) "clean span unflagged" false inner_raised;
  (* Interval containment on the monotonised clock. *)
  Alcotest.(check bool) "inner starts after outer" true (inner_start >= outer_start);
  Alcotest.(check bool) "inner ends within outer" true
    (inner_start + inner_dur <= outer_start + outer_dur);
  (* Attrs survive the trip. *)
  let inner_line =
    List.find (fun l -> Json.want_str (Json.parse l) "name" = "inner") (read_lines path)
  in
  Alcotest.(check string) "attr value" "v"
    (Json.want_str (Json.field (Json.parse inner_line) "attrs") "k")

let test_span_disabled_is_passthrough () =
  Alcotest.(check bool) "no sink" false (Span.enabled ());
  Alcotest.(check int) "with_ returns" 7 (Span.with_ ~name:"noop" (fun () -> 7));
  Alcotest.check_raises "with_ reraises" Exit (fun () ->
      Span.with_ ~name:"noop" (fun () -> raise Exit))

(* -- Manifest ---------------------------------------------------------- *)

let test_manifest_schema () =
  with_temp ".json" @@ fun path ->
  let exp ?error ?(resumed = false) id seconds status =
    { Manifest.id; seconds; status; resumed; error }
  in
  let m =
    Manifest.make ~command:"run-all" ~profile:"fast" ~seed:7 ~jobs:4
      ~jobs_requested:16 ~adaptive:true ~warm_start:false ~wall_seconds:1.5
      ~cpu_seconds:4.25
      ~experiments:
        [
          exp "T1-any-rule" 0.5 "ok" ~resumed:true;
          exp "T5-centralized" 1.0 "failed" ~error:"boom";
        ]
  in
  Manifest.write ~path m;
  let j = Json.parse (read_file path) in
  Alcotest.(check string) "schema" "dut-manifest/3" (Json.want_str j "schema");
  Alcotest.(check string) "command" "run-all" (Json.want_str j "command");
  Alcotest.(check string) "status" "failed" (Json.want_str j "status");
  Alcotest.(check int) "seed" 7 (int_of_float (Json.want_num j "seed"));
  Alcotest.(check int) "jobs" 4 (int_of_float (Json.want_num j "jobs"));
  Alcotest.(check int) "jobs_requested" 16
    (int_of_float (Json.want_num j "jobs_requested"));
  Alcotest.(check bool) "adaptive" true (Json.want_bool j "adaptive");
  Alcotest.(check bool) "warm_start" false (Json.want_bool j "warm_start");
  Alcotest.(check (float 1e-9)) "cpu" 4.25 (Json.want_num j "cpu_seconds");
  (match Json.field j "experiments" with
  | Json.Arr [ e1; e2 ] ->
      Alcotest.(check string) "exp order" "T1-any-rule" (Json.want_str e1 "id");
      Alcotest.(check string) "exp status" "ok" (Json.want_str e1 "status");
      Alcotest.(check bool) "exp resumed" true (Json.want_bool e1 "resumed");
      Alcotest.(check (float 1e-9)) "exp seconds" 1.0 (Json.want_num e2 "seconds");
      Alcotest.(check string) "exp error" "boom" (Json.want_str e2 "error")
  | _ -> Alcotest.fail "experiments is not a 2-array");
  (* The counter snapshot rides along; mc.trials_used is registered by
     the stats library this test links (and exercised above). *)
  (match Json.field j "counters" with
  | Json.Obj fields ->
      Alcotest.(check bool) "mc.trials_used present" true
        (List.mem_assoc "mc.trials_used" fields)
  | _ -> Alcotest.fail "counters is not an object");
  (* /3 adds the histogram summaries next to the counters. *)
  (match Json.field j "histograms" with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "histograms is not an object");
  Alcotest.(check bool) "git stamp nonempty" true
    (String.length (Json.want_str j "git") > 0)

(* -- Out-of-band guarantee --------------------------------------------- *)

module Registry = Dut_experiments.Registry
module Runner = Dut_experiments.Runner
module Config = Dut_experiments.Config

let run_registry_experiment ~trace path =
  (match Registry.find "T8-combinatorics" with
  | None -> Alcotest.fail "T8-combinatorics not registered"
  | Some exp ->
      Span.set_sink trace;
      Fun.protect ~finally:(fun () -> Span.set_sink None) @@ fun () ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
      ignore
        (Runner.run_to_channel ~timings:false
           (Config.make ~trials:20 Config.Fast)
           exp oc));
  read_file path

let test_stdout_identical_with_trace () =
  with_temp ".out" @@ fun out_plain ->
  with_temp ".out" @@ fun out_traced ->
  with_temp ".jsonl" @@ fun trace ->
  let plain = run_registry_experiment ~trace:None out_plain in
  let traced = run_registry_experiment ~trace:(Some trace) out_traced in
  Alcotest.(check string) "output bytes identical" plain traced;
  let lines = read_lines trace in
  Alcotest.(check bool) "trace nonempty" true (lines <> []);
  (* Every line parses and carries the span schema; exactly one
     experiment root span for the run. *)
  let names =
    List.map
      (fun l ->
        let j = Json.parse l in
        ignore (Json.want_num j "span");
        ignore (Json.want_num j "start_ns");
        ignore (Json.want_num j "dur_ns");
        ignore (Json.want_num j "domain");
        Json.want_str j "name")
      lines
  in
  Alcotest.(check int) "one experiment span" 1
    (List.length (List.filter (( = ) "experiment") names));
  Alcotest.(check bool) "table spans present" true (List.mem "table" names)

let test_stdout_identical_with_sampler () =
  with_temp ".out" @@ fun out_plain ->
  with_temp ".out" @@ fun out_sampled ->
  with_temp ".jsonl" @@ fun timeline ->
  let plain = run_registry_experiment ~trace:None out_plain in
  Timeline.start ~path:timeline ~interval_ms:10 ();
  let sampled =
    Fun.protect ~finally:Timeline.stop @@ fun () ->
    run_registry_experiment ~trace:None out_sampled
  in
  Alcotest.(check bool) "sampler stopped" false (Timeline.enabled ());
  Alcotest.(check string) "output bytes identical" plain sampled;
  match read_lines timeline with
  | [] -> Alcotest.fail "timeline file is empty"
  | header :: samples ->
      let h = Json.parse header in
      Alcotest.(check string) "timeline schema" "dut-timeline/1"
        (Json.want_str h "schema");
      Alcotest.(check int) "interval recorded" 10
        (int_of_float (Json.want_num h "interval_ms"));
      (* stop always flushes a final sample, so even a sub-interval run
         produces at least one. *)
      Alcotest.(check bool) "at least one sample" true (samples <> []);
      List.iter
        (fun line ->
          let s = Json.parse line in
          ignore (Json.want_num s "t_ns");
          ignore (Json.want_num (Json.field s "gc") "minor_words");
          match
            ( Json.field s "counters",
              Json.field s "gauges",
              Json.field s "histograms" )
          with
          | Json.Obj _, Json.Obj _, Json.Obj _ -> ()
          | _ -> Alcotest.fail "sample members are not objects")
        samples

(* -- Profile ------------------------------------------------------------ *)

let span_line ~id ~name ~parent ~start ~dur =
  Printf.sprintf
    {|{"name":%S,"span":%d,"parent":%s,"domain":0,"start_ns":%d,"dur_ns":%d}|}
    name id
    (if parent < 0 then "null" else string_of_int parent)
    start dur

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc content

(* run(0..100) > a(10..40) > leaf(15..25); a again at 50..70. Self:
   run 100-(30+20)=50, a 20+20=40, leaf 10. *)
let synthetic_trace =
  String.concat "\n"
    [
      span_line ~id:0 ~name:"run" ~parent:(-1) ~start:0 ~dur:100;
      span_line ~id:1 ~name:"a" ~parent:0 ~start:10 ~dur:30;
      span_line ~id:2 ~name:"leaf" ~parent:1 ~start:15 ~dur:10;
      span_line ~id:3 ~name:"a" ~parent:0 ~start:50 ~dur:20;
    ]
  ^ "\n"

let test_profile_aggregate_and_folded () =
  with_temp ".jsonl" @@ fun path ->
  write_file path synthetic_trace;
  match Profile.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok { Profile.spans; truncated } ->
      Alcotest.(check bool) "complete file" false truncated;
      Alcotest.(check int) "four spans" 4 (List.length spans);
      let aggs = Profile.aggregate spans in
      let names = List.map (fun a -> a.Profile.agg_name) aggs in
      (* Sorted by self time descending: run 50, a 40, leaf 10. *)
      Alcotest.(check (list string)) "self-time order" [ "run"; "a"; "leaf" ]
        names;
      let find n = List.find (fun a -> a.Profile.agg_name = n) aggs in
      Alcotest.(check int) "run self" 50 (find "run").Profile.self_ns;
      Alcotest.(check int) "a self" 40 (find "a").Profile.self_ns;
      Alcotest.(check int) "a count" 2 (find "a").Profile.count;
      Alcotest.(check int) "a total" 50 (find "a").Profile.total_ns;
      Alcotest.(check int) "a max" 30 (find "a").Profile.max_ns;
      Alcotest.(check int) "total self" 100 (Profile.total_self_ns spans);
      Alcotest.(check int) "total self except run" 50
        (Profile.total_self_ns ~except:[ "run" ] spans);
      Alcotest.(check int) "wall extent" 100 (Profile.wall_ns spans);
      Alcotest.(check (list (pair string int))) "folded stacks"
        [ ("run", 50); ("run;a", 40); ("run;a;leaf", 10) ]
        (Profile.folded spans)

let test_profile_lint_cases () =
  (* Empty trace: valid, no spans — the CLI warns but exits 0. *)
  with_temp ".jsonl" (fun path ->
      write_file path "";
      match Profile.read_file path with
      | Ok { Profile.spans = []; truncated = false } -> ()
      | Ok _ -> Alcotest.fail "empty file produced spans"
      | Error msg -> Alcotest.fail msg);
  (* A partial final line is truncation evidence, not a parse error:
     every complete span is still returned. *)
  with_temp ".jsonl" (fun path ->
      write_file path
        (synthetic_trace ^ {|{"name":"torn","span":9,"paren|});
      match Profile.read_file path with
      | Ok { Profile.spans; truncated } ->
          Alcotest.(check bool) "truncated flagged" true truncated;
          Alcotest.(check int) "complete spans kept" 4 (List.length spans)
      | Error msg -> Alcotest.fail msg);
  (* A malformed *complete* line is corruption, not truncation. *)
  with_temp ".jsonl" (fun path ->
      write_file path (synthetic_trace ^ "not json\n");
      match Profile.read_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed complete line accepted")

(* ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "dut_obs"
    [
      ("json", [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip ]);
      ( "metrics",
        [
          Alcotest.test_case "sum across domains" `Quick
            test_counter_sum_across_domains;
          Alcotest.test_case "pool claims sum-consistent" `Quick
            test_pool_claims_sum_consistent;
          Alcotest.test_case "pool task_ns sum-consistent" `Quick
            test_pool_task_ns_sum_consistent;
          Alcotest.test_case "jobs-invariant tallies" `Quick
            test_jobs_invariant_tallies;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "small values exact" `Quick
            test_histogram_small_values_exact;
          Alcotest.test_case "malformed bucket json rejected" `Quick
            test_histogram_json_malformed;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_hist_merge_assoc_comm;
              prop_hist_buckets_bracket;
              prop_hist_quantile_brackets_exact;
              prop_hist_json_roundtrip;
            ] );
      ( "clock",
        [
          Alcotest.test_case "now_ns monotone across domains" `Quick
            test_now_ns_monotone_across_domains;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and jsonl" `Quick
            test_span_nesting_and_jsonl;
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_is_passthrough;
        ] );
      ( "manifest",
        [ Alcotest.test_case "schema" `Quick test_manifest_schema ] );
      ( "out-of-band",
        [
          Alcotest.test_case "stdout identical with trace" `Quick
            test_stdout_identical_with_trace;
          Alcotest.test_case "stdout identical with sampler" `Quick
            test_stdout_identical_with_sampler;
        ] );
      ( "profile",
        [
          Alcotest.test_case "aggregate and folded" `Quick
            test_profile_aggregate_and_folded;
          Alcotest.test_case "lint cases" `Quick test_profile_lint_cases;
        ] );
    ]
