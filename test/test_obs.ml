(* Tests for Dut_obs: counter aggregation across pool domains, the
   jobs-invariance contract of the Monte-Carlo / critical-search
   tallies, span nesting and JSONL validity, the manifest schema, and
   the out-of-band guarantee — stdout byte-identical with and without
   a trace sink. *)

open Dut_obs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let read_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let with_temp name f =
  let path = Filename.temp_file "dut_obs_test" name in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () -> f path

(* -- Json -------------------------------------------------------------- *)

let json = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("count", Json.int 42);
        ("pi", Json.Num 3.5);
        ("neg", Json.int (-7));
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.Arr [ Json.int 1; Json.Str "two"; Json.Bool false ]);
        ("empty_obj", Json.Obj []);
        ("empty_arr", Json.Arr []);
      ]
  in
  Alcotest.check json "roundtrip" v (Json.parse (Json.to_string v));
  (* Integers render without a decimal point — the trace/manifest files
     stay greppable with integer tooling. *)
  Alcotest.(check string) "int rendering" "7" (Json.to_string (Json.int 7));
  (* Non-finite numbers degrade to null rather than emitting invalid JSON. *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Num Float.nan));
  (match Json.parse "null x" with
  | exception Json.Malformed _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted")

(* -- Counters ---------------------------------------------------------- *)

let test_counter_sum_across_domains () =
  let c = Metrics.counter "test.obs.domain_sum" in
  let before = Metrics.value "test.obs.domain_sum" in
  let pool = Dut_engine.Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Dut_engine.Pool.shutdown pool) @@ fun () ->
  Dut_engine.Pool.run pool ~tasks:500 (fun _ -> Metrics.incr c);
  (* The pool join is the aggregation point: every per-domain tally is
     published, the snapshot sum is exact. *)
  Alcotest.(check int) "sum over domains" 500
    (Metrics.value "test.obs.domain_sum" - before);
  Alcotest.(check bool) "snapshot carries it" true
    (List.exists
       (fun (n, v) ->
         n = "test.obs.domain_sum" && v = Metrics.Count (before + 500))
       (Metrics.snapshot ()))

let pool_claims_delta ~jobs ~tasks =
  let before = Metrics.value "pool.tasks_claimed" in
  let pool = Dut_engine.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Dut_engine.Pool.shutdown pool) @@ fun () ->
  Dut_engine.Pool.run pool ~tasks (fun _ -> ());
  Metrics.value "pool.tasks_claimed" - before

let test_pool_claims_sum_consistent () =
  (* pool.tasks_claimed is schedule-dependent per domain, but its sum
     is the number of tasks — on the inline jobs=1 path and the
     multi-domain path alike. *)
  Alcotest.(check int) "jobs=1 claims" 137 (pool_claims_delta ~jobs:1 ~tasks:137);
  Alcotest.(check int) "jobs=4 claims" 137 (pool_claims_delta ~jobs:4 ~tasks:137)

(* -- Jobs-invariance of the stats tallies ------------------------------ *)

(* One critical search whose predicate is an adaptive Monte-Carlo
   estimate: the engine's determinism contract promises the answer and
   the mc.*/search.* tallies are bit-identical for every jobs count. *)
let search_leg ~jobs =
  let rng = Dut_prng.Rng.create 42 in
  let t0 = Metrics.value "mc.trials_used" in
  let e0 = Metrics.value "mc.adaptive_early_stops" in
  let p0 = Metrics.value "search.probes" in
  let answer =
    Dut_stats.Critical.search ~lo:1 ~hi:4096 (fun q ->
        let a =
          Dut_stats.Montecarlo.estimate_prob_adaptive ~jobs ~max_trials:160
            ~target:0.7 (Dut_prng.Rng.split rng) (fun r ->
              Dut_prng.Rng.unit_float r < 0.2 +. (0.7 *. float_of_int q /. 4096.))
        in
        a.Dut_stats.Montecarlo.ci.Dut_stats.Binomial_ci.estimate >= 0.7)
  in
  ( answer,
    Metrics.value "mc.trials_used" - t0,
    Metrics.value "mc.adaptive_early_stops" - e0,
    Metrics.value "search.probes" - p0 )

let test_jobs_invariant_tallies () =
  let a1, t1, e1, p1 = search_leg ~jobs:1 in
  let a4, t4, e4, p4 = search_leg ~jobs:4 in
  Alcotest.(check bool) "search found a critical value" true (a1 <> None);
  Alcotest.(check bool) "same answer" true (a1 = a4);
  Alcotest.(check int) "mc.trials_used invariant" t1 t4;
  Alcotest.(check int) "mc.adaptive_early_stops invariant" e1 e4;
  Alcotest.(check int) "search.probes invariant" p1 p4;
  Alcotest.(check bool) "trials were spent" true (t1 > 0);
  Alcotest.(check bool) "probes were spent" true (p1 > 0)

(* -- Spans ------------------------------------------------------------- *)

let span_records path =
  List.map
    (fun line ->
      let j = Json.parse line in
      ( int_of_float (Json.want_num j "span"),
        ( Json.want_str j "name",
          Json.field_opt j "parent",
          int_of_float (Json.want_num j "start_ns"),
          int_of_float (Json.want_num j "dur_ns"),
          Json.field_opt j "raised" <> None ) ))
    (read_lines path)

let test_span_nesting_and_jsonl () =
  with_temp ".jsonl" @@ fun path ->
  Span.set_sink (Some path);
  Alcotest.(check bool) "sink open" true (Span.enabled ());
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner"
        ~attrs:[ ("k", Json.Str "v") ]
        (fun () -> ignore (Sys.opaque_identity 0));
      try Span.with_ ~name:"boom" (fun () -> raise Exit) with Exit -> ());
  Span.set_sink None;
  Alcotest.(check bool) "sink closed" false (Span.enabled ());
  let spans = span_records path in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name =
    let id, (_, parent, start, dur, raised) =
      List.find (fun (_, (n, _, _, _, _)) -> n = name) spans
    in
    (id, parent, start, dur, raised)
  in
  let outer_id, outer_parent, outer_start, outer_dur, _ = find "outer" in
  let _, inner_parent, inner_start, inner_dur, inner_raised = find "inner" in
  let _, boom_parent, _, _, boom_raised = find "boom" in
  Alcotest.check json "outer is a root" Json.Null
    (Option.value ~default:Json.Null outer_parent);
  Alcotest.check json "inner child of outer" (Json.int outer_id)
    (Option.get inner_parent);
  Alcotest.check json "boom child of outer" (Json.int outer_id)
    (Option.get boom_parent);
  Alcotest.(check bool) "raised flagged" true boom_raised;
  Alcotest.(check bool) "clean span unflagged" false inner_raised;
  (* Interval containment on the monotonised clock. *)
  Alcotest.(check bool) "inner starts after outer" true (inner_start >= outer_start);
  Alcotest.(check bool) "inner ends within outer" true
    (inner_start + inner_dur <= outer_start + outer_dur);
  (* Attrs survive the trip. *)
  let inner_line =
    List.find (fun l -> Json.want_str (Json.parse l) "name" = "inner") (read_lines path)
  in
  Alcotest.(check string) "attr value" "v"
    (Json.want_str (Json.field (Json.parse inner_line) "attrs") "k")

let test_span_disabled_is_passthrough () =
  Alcotest.(check bool) "no sink" false (Span.enabled ());
  Alcotest.(check int) "with_ returns" 7 (Span.with_ ~name:"noop" (fun () -> 7));
  Alcotest.check_raises "with_ reraises" Exit (fun () ->
      Span.with_ ~name:"noop" (fun () -> raise Exit))

(* -- Manifest ---------------------------------------------------------- *)

let test_manifest_schema () =
  with_temp ".json" @@ fun path ->
  let exp ?error ?(resumed = false) id seconds status =
    { Manifest.id; seconds; status; resumed; error }
  in
  let m =
    Manifest.make ~command:"run-all" ~profile:"fast" ~seed:7 ~jobs:4
      ~jobs_requested:16 ~adaptive:true ~warm_start:false ~wall_seconds:1.5
      ~cpu_seconds:4.25
      ~experiments:
        [
          exp "T1-any-rule" 0.5 "ok" ~resumed:true;
          exp "T5-centralized" 1.0 "failed" ~error:"boom";
        ]
  in
  Manifest.write ~path m;
  let j = Json.parse (read_file path) in
  Alcotest.(check string) "schema" "dut-manifest/2" (Json.want_str j "schema");
  Alcotest.(check string) "command" "run-all" (Json.want_str j "command");
  Alcotest.(check string) "status" "failed" (Json.want_str j "status");
  Alcotest.(check int) "seed" 7 (int_of_float (Json.want_num j "seed"));
  Alcotest.(check int) "jobs" 4 (int_of_float (Json.want_num j "jobs"));
  Alcotest.(check int) "jobs_requested" 16
    (int_of_float (Json.want_num j "jobs_requested"));
  Alcotest.(check bool) "adaptive" true (Json.want_bool j "adaptive");
  Alcotest.(check bool) "warm_start" false (Json.want_bool j "warm_start");
  Alcotest.(check (float 1e-9)) "cpu" 4.25 (Json.want_num j "cpu_seconds");
  (match Json.field j "experiments" with
  | Json.Arr [ e1; e2 ] ->
      Alcotest.(check string) "exp order" "T1-any-rule" (Json.want_str e1 "id");
      Alcotest.(check string) "exp status" "ok" (Json.want_str e1 "status");
      Alcotest.(check bool) "exp resumed" true (Json.want_bool e1 "resumed");
      Alcotest.(check (float 1e-9)) "exp seconds" 1.0 (Json.want_num e2 "seconds");
      Alcotest.(check string) "exp error" "boom" (Json.want_str e2 "error")
  | _ -> Alcotest.fail "experiments is not a 2-array");
  (* The counter snapshot rides along; mc.trials_used is registered by
     the stats library this test links (and exercised above). *)
  (match Json.field j "counters" with
  | Json.Obj fields ->
      Alcotest.(check bool) "mc.trials_used present" true
        (List.mem_assoc "mc.trials_used" fields)
  | _ -> Alcotest.fail "counters is not an object");
  Alcotest.(check bool) "git stamp nonempty" true
    (String.length (Json.want_str j "git") > 0)

(* -- Out-of-band guarantee --------------------------------------------- *)

module Registry = Dut_experiments.Registry
module Runner = Dut_experiments.Runner
module Config = Dut_experiments.Config

let run_registry_experiment ~trace path =
  (match Registry.find "T8-combinatorics" with
  | None -> Alcotest.fail "T8-combinatorics not registered"
  | Some exp ->
      Span.set_sink trace;
      Fun.protect ~finally:(fun () -> Span.set_sink None) @@ fun () ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
      ignore
        (Runner.run_to_channel ~timings:false
           (Config.make ~trials:20 Config.Fast)
           exp oc));
  read_file path

let test_stdout_identical_with_trace () =
  with_temp ".out" @@ fun out_plain ->
  with_temp ".out" @@ fun out_traced ->
  with_temp ".jsonl" @@ fun trace ->
  let plain = run_registry_experiment ~trace:None out_plain in
  let traced = run_registry_experiment ~trace:(Some trace) out_traced in
  Alcotest.(check string) "output bytes identical" plain traced;
  let lines = read_lines trace in
  Alcotest.(check bool) "trace nonempty" true (lines <> []);
  (* Every line parses and carries the span schema; exactly one
     experiment root span for the run. *)
  let names =
    List.map
      (fun l ->
        let j = Json.parse l in
        ignore (Json.want_num j "span");
        ignore (Json.want_num j "start_ns");
        ignore (Json.want_num j "dur_ns");
        ignore (Json.want_num j "domain");
        Json.want_str j "name")
      lines
  in
  Alcotest.(check int) "one experiment span" 1
    (List.length (List.filter (( = ) "experiment") names));
  Alcotest.(check bool) "table spans present" true (List.mem "table" names)

(* ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "dut_obs"
    [
      ("json", [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip ]);
      ( "metrics",
        [
          Alcotest.test_case "sum across domains" `Quick
            test_counter_sum_across_domains;
          Alcotest.test_case "pool claims sum-consistent" `Quick
            test_pool_claims_sum_consistent;
          Alcotest.test_case "jobs-invariant tallies" `Quick
            test_jobs_invariant_tallies;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and jsonl" `Quick
            test_span_nesting_and_jsonl;
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_is_passthrough;
        ] );
      ( "manifest",
        [ Alcotest.test_case "schema" `Quick test_manifest_schema ] );
      ( "out-of-band",
        [
          Alcotest.test_case "stdout identical with trace" `Quick
            test_stdout_identical_with_trace;
        ] );
    ]
