(* Tests for the dut_prng library: generator determinism, splitting,
   bounded draws, and the distributional sanity of the samplers. *)

open Dut_prng

let check_float = Alcotest.(check (float 1e-9))

(* -- Splitmix ------------------------------------------------------- *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 123L and b = Splitmix.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 1L and b = Splitmix.create 2L in
  let xa = Splitmix.next_int64 a and xb = Splitmix.next_int64 b in
  Alcotest.(check bool) "different seeds differ" true (xa <> xb)

let test_splitmix_copy_independent () =
  let a = Splitmix.create 7L in
  let _ = Splitmix.next_int64 a in
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix.next_int64 a)
    (Splitmix.next_int64 b)

let test_splitmix_mix_nonzero () =
  (* mix is a bijection-ish finalizer; it should not collapse small inputs. *)
  let outs = List.init 64 (fun i -> Splitmix.mix (Int64.of_int i)) in
  let distinct = List.sort_uniq compare outs in
  Alcotest.(check int) "64 distinct outputs" 64 (List.length distinct)

let test_splitmix_split_diverges () =
  let a = Splitmix.create 99L in
  let child = Splitmix.split a in
  let xa = Splitmix.next_int64 a and xc = Splitmix.next_int64 child in
  Alcotest.(check bool) "parent and child streams differ" true (xa <> xc)

(* -- Xoshiro -------------------------------------------------------- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 5L and b = Xoshiro.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next_int64 a) (Xoshiro.next_int64 b)
  done

let test_xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro.of_state: all-zero state") (fun () ->
      ignore (Xoshiro.of_state 0L 0L 0L 0L))

let test_xoshiro_jump_changes_stream () =
  let a = Xoshiro.create 11L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  Alcotest.(check bool) "jumped stream differs" true
    (Xoshiro.next_int64 a <> Xoshiro.next_int64 b)

(* -- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same ints" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 2 in
  List.iter
    (fun bound ->
      for _ = 1 to 1000 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then
          Alcotest.failf "Rng.int %d returned %d" bound v
      done)
    [ 1; 2; 3; 7; 100; 1023; 1024; 1025 ]

let test_rng_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of range: %d" v
  done

let test_rng_int_covers_all_values () =
  let rng = Rng.create 5 in
  let seen = Array.make 8 false in
  for _ = 1 to 2000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all 8 values seen" true (Array.for_all Fun.id seen)

let test_rng_unit_float_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 10000 do
    let x = Rng.unit_float rng in
    if x < 0. || x >= 1. then Alcotest.failf "unit_float out of range: %f" x
  done

let test_rng_unit_float_mean () =
  let rng = Rng.create 7 in
  let total = ref 0. in
  let trials = 100000 in
  for _ = 1 to trials do
    total := !total +. Rng.unit_float rng
  done;
  let mean = !total /. float_of_int trials in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_split_independence () =
  (* Children must not mirror the parent or each other. *)
  let parent = Rng.create 8 in
  let c1 = Rng.split parent and c2 = Rng.split parent in
  let s1 = Array.init 20 (fun _ -> Rng.bits64 c1) in
  let s2 = Array.init 20 (fun _ -> Rng.bits64 c2) in
  Alcotest.(check bool) "children differ" true (s1 <> s2)

let test_rng_split_n () =
  let rng = Rng.create 9 in
  let children = Rng.split_n rng 10 in
  Alcotest.(check int) "10 children" 10 (Array.length children);
  let firsts = Array.map (fun c -> Rng.bits64 c) children in
  let distinct = Array.to_list firsts |> List.sort_uniq compare in
  Alcotest.(check int) "children start differently" 10 (List.length distinct)

let test_bernoulli_extremes () =
  let rng = Rng.create 10 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_bernoulli_mean () =
  let rng = Rng.create 11 in
  let count = ref 0 in
  let trials = 50000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr count
  done;
  let mean = float_of_int !count /. float_of_int trials in
  Alcotest.(check bool) "mean near 0.3" true (Float.abs (mean -. 0.3) < 0.01)

let test_binomial_support () =
  let rng = Rng.create 12 in
  for _ = 1 to 1000 do
    let v = Rng.binomial rng 20 0.4 in
    if v < 0 || v > 20 then Alcotest.failf "binomial out of support: %d" v
  done

let test_binomial_mean () =
  let rng = Rng.create 13 in
  let total = ref 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    total := !total + Rng.binomial rng 50 0.2
  done;
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool) "mean near np=10" true (Float.abs (mean -. 10.) < 0.2)

let test_binomial_extremes () =
  let rng = Rng.create 14 in
  Alcotest.(check int) "p=0" 0 (Rng.binomial rng 100 0.);
  Alcotest.(check int) "p=1" 100 (Rng.binomial rng 100 1.);
  Alcotest.(check int) "n=0" 0 (Rng.binomial rng 0 0.5)

let test_poisson_moments () =
  let rng = Rng.create 25 in
  List.iter
    (fun lambda ->
      let trials = 30000 in
      let total = ref 0 and total_sq = ref 0 in
      for _ = 1 to trials do
        let v = Rng.poisson rng lambda in
        total := !total + v;
        total_sq := !total_sq + (v * v)
      done;
      let mean = float_of_int !total /. float_of_int trials in
      let var = (float_of_int !total_sq /. float_of_int trials) -. (mean *. mean) in
      (* Mean and variance both equal lambda. *)
      if Float.abs (mean -. lambda) > 0.05 *. (lambda +. 1.) then
        Alcotest.failf "poisson(%f) mean %f" lambda mean;
      if Float.abs (var -. lambda) > 0.1 *. (lambda +. 1.) then
        Alcotest.failf "poisson(%f) variance %f" lambda var)
    [ 0.5; 3.; 20.; 100. ]

let test_poisson_extremes () =
  let rng = Rng.create 26 in
  Alcotest.(check int) "lambda 0" 0 (Rng.poisson rng 0.);
  Alcotest.check_raises "negative" (Invalid_argument "Rng.poisson: negative lambda")
    (fun () -> ignore (Rng.poisson rng (-1.)))

let test_geometric_mean () =
  let rng = Rng.create 15 in
  let total = ref 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    total := !total + Rng.geometric rng 0.25
  done;
  (* mean of failures-before-success = (1-p)/p = 3 *)
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.) < 0.15)

let test_geometric_p1 () =
  let rng = Rng.create 16 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng 1.)
  done

let test_geometric_invalid () =
  let rng = Rng.create 17 in
  Alcotest.check_raises "p=0" (Invalid_argument "Rng.geometric: p out of (0,1]")
    (fun () -> ignore (Rng.geometric rng 0.))

let test_shuffle_is_permutation () =
  let rng = Rng.create 18 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

let test_shuffle_moves_things () =
  let rng = Rng.create 19 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle_in_place rng a;
  Alcotest.(check bool) "not identity" true (a <> Array.init 100 Fun.id)

let test_choose () =
  let rng = Rng.create 20 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.choose rng a in
    Alcotest.(check bool) "element of array" true (Array.mem v a)
  done

let test_choose_empty () =
  let rng = Rng.create 21 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_sign_balance () =
  let rng = Rng.create 22 in
  let total = ref 0 in
  for _ = 1 to 10000 do
    total := !total + Rng.sign rng
  done;
  Alcotest.(check bool) "signs balance" true (abs !total < 300)

let test_rademacher_vector () =
  let rng = Rng.create 23 in
  let v = Rng.rademacher_vector rng 256 in
  Alcotest.(check int) "length" 256 (Array.length v);
  Array.iter
    (fun s -> Alcotest.(check bool) "entries +-1" true (s = 1 || s = -1))
    v

let test_float_bound () =
  let rng = Rng.create 24 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3.5 in
    if x < 0. || x >= 3.5 then Alcotest.failf "float out of range: %f" x
  done;
  check_float "float 0 bound" 0. (Rng.float rng 0.)

(* -- Pair kernel vs the Int64 reference ------------------------------ *)

(* Textbook splitmix64, kept in Int64 the whole way. The production
   kernel runs on 32-bit native halves to stay allocation-free, so
   matching this reference word for word across seeds certifies the
   limb arithmetic (carries, cross products, shifts across the seam). *)
let splitmix_ref seed =
  let state = ref seed in
  fun () ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

let rotl64 x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Textbook xoshiro256++ in Int64, seeded exactly as [Xoshiro.create]:
   four splitmix64 words (all-zero guarded to s0 = 1). *)
let xoshiro_ref seed =
  let sm = splitmix_ref seed in
  let s = Array.init 4 (fun _ -> sm ()) in
  if Array.for_all (Int64.equal 0L) s then s.(0) <- 1L;
  fun () ->
    let result = Int64.add (rotl64 (Int64.add s.(0) s.(3)) 23) s.(0) in
    let t = Int64.shift_left s.(1) 17 in
    s.(2) <- Int64.logxor s.(2) s.(0);
    s.(3) <- Int64.logxor s.(3) s.(1);
    s.(1) <- Int64.logxor s.(1) s.(2);
    s.(0) <- Int64.logxor s.(0) s.(3);
    s.(2) <- Int64.logxor s.(2) t;
    s.(3) <- rotl64 s.(3) 45;
    result

let kernel_seeds =
  [ 0L; 1L; -1L; 123456789L; 0xDEADBEEFL; Int64.min_int; Int64.max_int ]

let test_splitmix_matches_int64_reference () =
  List.iter
    (fun seed ->
      let t = Splitmix.create seed in
      let next = splitmix_ref seed in
      for i = 1 to 500 do
        Alcotest.(check int64)
          (Printf.sprintf "seed %Ld word %d" seed i)
          (next ()) (Splitmix.next_int64 t)
      done)
    kernel_seeds

let test_xoshiro_matches_int64_reference () =
  List.iter
    (fun seed ->
      let t = Xoshiro.create seed in
      let next = xoshiro_ref seed in
      for i = 1 to 500 do
        Alcotest.(check int64)
          (Printf.sprintf "seed %Ld word %d" seed i)
          (next ()) (Xoshiro.next_int64 t)
      done)
    kernel_seeds

let test_unit_float_is_bits53_lattice () =
  (* unit_float is the 53-bit integer lattice scaled by 2^-53 — the
     identity the samplers' integer-compare fast paths rely on. *)
  let a = Rng.create 31 and b = Rng.create 31 in
  for _ = 1 to 2000 do
    check_float "lattice point"
      (float_of_int (Rng.bits53 b) *. 0x1.0p-53)
      (Rng.unit_float a)
  done

let test_borrow_child_streams_like_split () =
  let a = Rng.create 77 and b = Rng.create 77 in
  let c1 = Rng.split a in
  let c2 = Rng.borrow_child () in
  Rng.split_into b c2;
  let s1 = Array.init 10 (fun _ -> Rng.bits64 c1) in
  let s2 = Array.init 10 (fun _ -> Rng.bits64 c2) in
  Rng.release_child c2;
  Alcotest.(check (array int64)) "borrowed child streams like split" s1 s2

(* -- qcheck properties ---------------------------------------------- *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always within bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, b) ->
      let bound = b + 1 in
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_split_deterministic =
  QCheck.Test.make ~name:"splitting is deterministic in the seed" ~count:200
    QCheck.small_int (fun seed ->
      let mk () =
        let r = Rng.create seed in
        let c = Rng.split r in
        (Rng.bits64 r, Rng.bits64 c)
      in
      mk () = mk ())

let prop_ints_into_equals_scalar =
  (* Same values AND the same post-state (checked through bits64): the
     batched fill consumes exactly the draws the scalar loop would. *)
  QCheck.Test.make ~name:"ints_into = scalar int loop" ~count:300
    QCheck.(triple small_int (int_range 1 2000) (int_range 0 300))
    (fun (seed, bound, len) ->
      let a = Rng.create seed and b = Rng.create seed in
      let buf = Array.make len 0 in
      Rng.ints_into a ~bound buf;
      let expected = Array.init len (fun _ -> Rng.int b bound) in
      expected = buf && Rng.bits64 a = Rng.bits64 b)

let prop_unit_floats_into_equals_scalar =
  QCheck.Test.make ~name:"unit_floats_into = scalar unit_float loop"
    ~count:300
    QCheck.(pair small_int (int_range 0 300))
    (fun (seed, len) ->
      let a = Rng.create seed and b = Rng.create seed in
      let buf = Array.make len 0. in
      Rng.unit_floats_into a buf;
      let expected = Array.init len (fun _ -> Rng.unit_float b) in
      expected = buf && Rng.bits64 a = Rng.bits64 b)

let prop_split_into_equals_split =
  (* Reseeding a scratch child in place must give the stream a fresh
     [split] would, twice in a row, and leave the parent identical. *)
  QCheck.Test.make ~name:"split_into = split (children and parent)" ~count:200
    QCheck.small_int (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      let scratch = Rng.create 0 in
      let round () =
        let fresh = Rng.split a in
        Rng.split_into b scratch;
        Array.init 30 (fun _ -> Rng.bits64 fresh)
        = Array.init 30 (fun _ -> Rng.bits64 scratch)
      in
      round () && round () && Rng.bits64 a = Rng.bits64 b)

let () =
  Alcotest.run "dut_prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_splitmix_copy_independent;
          Alcotest.test_case "mix injective on small ints" `Quick test_splitmix_mix_nonzero;
          Alcotest.test_case "split diverges" `Quick test_splitmix_split_diverges;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "zero state rejected" `Quick test_xoshiro_zero_state_rejected;
          Alcotest.test_case "jump" `Quick test_xoshiro_jump_changes_stream;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "int covers all values" `Quick test_rng_int_covers_all_values;
          Alcotest.test_case "unit_float range" `Quick test_rng_unit_float_range;
          Alcotest.test_case "unit_float mean" `Quick test_rng_unit_float_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "split_n" `Quick test_rng_split_n;
          Alcotest.test_case "float bound" `Quick test_float_bound;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Quick test_bernoulli_mean;
          Alcotest.test_case "binomial support" `Quick test_binomial_support;
          Alcotest.test_case "binomial mean" `Quick test_binomial_mean;
          Alcotest.test_case "binomial extremes" `Quick test_binomial_extremes;
          Alcotest.test_case "poisson moments" `Quick test_poisson_moments;
          Alcotest.test_case "poisson extremes" `Quick test_poisson_extremes;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "geometric invalid" `Quick test_geometric_invalid;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_things;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "choose empty" `Quick test_choose_empty;
          Alcotest.test_case "sign balance" `Quick test_sign_balance;
          Alcotest.test_case "rademacher vector" `Quick test_rademacher_vector;
        ] );
      ( "pair kernel",
        [
          Alcotest.test_case "splitmix matches Int64 reference" `Quick
            test_splitmix_matches_int64_reference;
          Alcotest.test_case "xoshiro matches Int64 reference" `Quick
            test_xoshiro_matches_int64_reference;
          Alcotest.test_case "unit_float is the bits53 lattice" `Quick
            test_unit_float_is_bits53_lattice;
          Alcotest.test_case "borrowed child streams like split" `Quick
            test_borrow_child_streams_like_split;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_int_in_bounds; prop_split_deterministic;
            prop_ints_into_equals_scalar; prop_unit_floats_into_equals_scalar;
            prop_split_into_equals_split;
          ] );
    ]
