(* Cross-module property tests: relations that tie the layers together
   (rule equivalences, sampler/distance consistency, amplification vs
   its bound, hard-family invariants under composition). *)

let vote_arrays =
  QCheck.(list_of_size (Gen.int_range 1 10) bool)
  |> QCheck.map (fun l -> Array.of_list l)

let prop_and_is_threshold_one =
  QCheck.Test.make ~name:"AND = Reject_threshold 1" ~count:300 vote_arrays
    (fun votes ->
      Dut_protocol.Rule.apply And votes
      = Dut_protocol.Rule.apply (Reject_threshold 1) votes)

let prop_or_is_accept_one =
  QCheck.Test.make ~name:"OR = Accept_at_least 1" ~count:300 vote_arrays
    (fun votes ->
      Dut_protocol.Rule.apply Or votes
      = Dut_protocol.Rule.apply (Accept_at_least 1) votes)

let prop_majority_is_accept_count =
  QCheck.Test.make ~name:"Majority = Accept_at_least (k/2+1)" ~count:300
    vote_arrays (fun votes ->
      let k = Array.length votes in
      Dut_protocol.Rule.apply Majority votes
      = Dut_protocol.Rule.apply (Accept_at_least ((k / 2) + 1)) votes)

let prop_threshold_complement =
  QCheck.Test.make ~name:"reject-threshold t accepts iff rejects < t" ~count:300
    QCheck.(pair (int_range 1 10) vote_arrays)
    (fun (t, votes) ->
      let t = min t (Array.length votes) in
      let rejects =
        Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 votes
      in
      Dut_protocol.Rule.apply (Reject_threshold t) votes = (rejects < t))

let prop_sampler_matches_pmf =
  (* Empirical frequencies converge: l1(empirical, pmf) small for a
     moderate sample size (loose bound, high probability). *)
  QCheck.Test.make ~name:"alias sampler tracks its pmf" ~count:20
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, size) ->
      let rng = Dut_prng.Rng.create seed in
      let w = Array.init size (fun _ -> 0.05 +. Dut_prng.Rng.unit_float rng) in
      let total = Array.fold_left ( +. ) 0. w in
      let pmf = Dut_dist.Pmf.create (Array.map (fun x -> x /. total) w) in
      let sampler = Dut_dist.Sampler.of_pmf pmf in
      let draws = 20000 in
      let hist =
        Dut_dist.Empirical.of_samples ~n:size
          (Dut_dist.Sampler.draw_many sampler rng draws)
      in
      Dut_dist.Distance.l1 (Dut_dist.Empirical.to_pmf hist) pmf < 0.1)

let prop_paninski_mix_reduces_distance =
  (* Mixing a hard instance towards uniform scales its distance
     linearly: l1(a*nu + (1-a)*U, U) = a * eps. *)
  QCheck.Test.make ~name:"mixing scales the hard family's distance" ~count:100
    QCheck.(triple small_int (float_range 0.1 0.9) (float_range 0.1 0.9))
    (fun (seed, eps, a) ->
      let rng = Dut_prng.Rng.create seed in
      let d = Dut_dist.Paninski.random ~ell:3 ~eps rng in
      let n = Dut_dist.Paninski.n d in
      let mixed =
        Dut_dist.Pmf.mix a (Dut_dist.Paninski.pmf d) (Dut_dist.Pmf.uniform n)
      in
      Float.abs (Dut_dist.Distance.distance_to_uniformity mixed -. (a *. eps))
      < 1e-9)

let prop_collision_prob_lower_bound =
  (* Any pmf's collision probability is at least 1/n, with equality only
     for uniform — the inequality behind every collision tester. *)
  QCheck.Test.make ~name:"collision probability >= 1/n" ~count:200
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, size) ->
      let rng = Dut_prng.Rng.create seed in
      let w = Array.init size (fun _ -> 0.01 +. Dut_prng.Rng.unit_float rng) in
      let total = Array.fold_left ( +. ) 0. w in
      let pmf = Dut_dist.Pmf.create (Array.map (fun x -> x /. total) w) in
      Dut_dist.Pmf.collision_prob pmf >= (1. /. float_of_int size) -. 1e-12)

let prop_amplify_beats_bound_on_coins =
  (* Majority of r biased coins errs no more than the Hoeffding bound
     (checked by direct binomial computation, not sampling). *)
  QCheck.Test.make ~name:"amplification error <= Hoeffding bound" ~count:100
    QCheck.(pair (int_range 0 4) (float_range 0.05 0.45))
    (fun (half_rounds, round_error) ->
      let rounds = (2 * half_rounds) + 1 in
      (* Exact majority error: P[Bin(rounds, round_error) > rounds/2]. *)
      let exact =
        Dut_stats.Tail.binomial_sf ~k:rounds ~p:round_error ((rounds / 2) + 1)
      in
      exact <= Dut_core.Amplify.error_bound ~rounds ~round_error +. 1e-9)

let prop_identity_reduction_granule_count =
  QCheck.Test.make ~name:"identity reduction granules sum to m" ~count:50
    QCheck.(pair (int_range 2 32) (float_range 0.1 0.8))
    (fun (size, eps) ->
      let target = Dut_dist.Families.zipf ~n:size ~s:1. in
      let r = Dut_testers.Identity.make ~target ~eps in
      Array.fold_left ( + ) 0 (Dut_testers.Identity.copies r)
      = Dut_testers.Identity.flattened_size r)

let prop_bounds_thm61_dominated_by_thm11 =
  (* In the k <= n/eps^2 range the two formulas agree on the sqrt
     branch. *)
  QCheck.Test.make ~name:"thm 6.1 = thm 1.1 on the sqrt branch" ~count:200
    QCheck.(pair (int_range 6 14) (int_range 0 8))
    (fun (log_n, log_k) ->
      let n = 1 lsl log_n and k = 1 lsl log_k in
      let eps = 0.3 in
      QCheck.assume (k <= n);
      Float.abs
        (Dut_core.Bounds.thm61_lower ~n ~k ~eps
        -. Dut_core.Bounds.thm11_lower ~n ~k ~eps)
      < 1e-9)

let prop_search_seeded_matches_cold =
  (* The warm-started critical search is an optimisation, never a
     different answer. Every monotone predicate on [lo, hi] is a step
     function, so a random threshold generates them all; the ranges are
     chosen so the cases that broke earlier drafts occur constantly:
     guesses far outside [lo, hi] (clamped), lo = 0 brackets, and
     thresholds past hi (the predicate is false everywhere and both
     searches must return None). *)
  QCheck.Test.make ~name:"search_seeded = search on monotone predicates"
    ~count:1000
    QCheck.(
      quad (int_range 0 50) (int_range 0 2000) (int_range (-4096) 8192)
        (int_range 0 2500))
    (fun (lo, span, guess, offset) ->
      let hi = lo + span in
      let first_true = lo + offset in
      let ok v = v >= first_true in
      Dut_stats.Critical.search_seeded ~lo ~hi ~guess ok
      = Dut_stats.Critical.search ~lo ~hi ok)

let prop_search_seeded_edge_cases =
  (* The named edges, pinned deterministically (the random property
     above also reaches them, but only with some probability). *)
  QCheck.Test.make ~name:"search_seeded pinned edges" ~count:1 QCheck.unit
    (fun () ->
      let open Dut_stats.Critical in
      let all_false _ = false in
      search ~lo:0 ~hi:100 all_false = None
      && search_seeded ~lo:0 ~hi:100 ~guess:7 all_false = None
      && search_seeded ~lo:0 ~hi:100 ~guess:(1 lsl 20) all_false = None
      && search_seeded ~lo:0 ~hi:100 ~guess:(-5) (fun v -> v >= 0) = Some 0
      && search_seeded ~lo:1 ~hi:64 ~guess:(1 lsl 20) (fun v -> v >= 10)
         = Some 10
      && search_seeded ~lo:3 ~hi:9 ~guess:(-7) (fun v -> v >= 5) = Some 5)

let prop_graph_handshake =
  (* Sum of degrees = 2 x edges on random connected graphs. *)
  QCheck.Test.make ~name:"handshake lemma" ~count:100
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, k) ->
      let rng = Dut_prng.Rng.create seed in
      let g = Dut_netsim.Graph.random_connected rng ~n:k ~extra_edges:(k / 2) in
      let degree_sum = ref 0 in
      for v = 0 to k - 1 do
        degree_sum := !degree_sum + Dut_netsim.Graph.degree g v
      done;
      !degree_sum = 2 * Dut_netsim.Graph.edge_count g)

let prop_span_tree_depth_consistent =
  QCheck.Test.make ~name:"spanning tree depths are BFS distances" ~count:50
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, k) ->
      let rng = Dut_prng.Rng.create seed in
      let g = Dut_netsim.Graph.random_connected rng ~n:k ~extra_edges:k in
      let t = Dut_netsim.Span_tree.of_graph g ~root:0 in
      let dist, _ = Dut_netsim.Graph.bfs g ~root:0 in
      t.Dut_netsim.Span_tree.depth = dist)

let () =
  Alcotest.run "dut_properties"
    [
      ( "rule equivalences",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_and_is_threshold_one; prop_or_is_accept_one;
            prop_majority_is_accept_count; prop_threshold_complement;
          ] );
      ( "distributions",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sampler_matches_pmf; prop_paninski_mix_reduces_distance;
            prop_collision_prob_lower_bound;
          ] );
      ( "cross-module",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_amplify_beats_bound_on_coins;
            prop_identity_reduction_granule_count;
            prop_bounds_thm61_dominated_by_thm11;
          ] );
      ( "critical search",
        List.map QCheck_alcotest.to_alcotest
          [ prop_search_seeded_matches_cold; prop_search_seeded_edge_cases ] );
      ( "graphs",
        List.map QCheck_alcotest.to_alcotest
          [ prop_graph_handshake; prop_span_tree_depth_consistent ] );
    ]
