(* Tests for dut_protocol: referee rules, the network round engine, and
   null calibration. *)

let bits l = Array.of_list l

(* -- Rule ------------------------------------------------------------- *)

let test_and_rule () =
  Alcotest.(check bool) "all accept" true
    (Dut_protocol.Rule.apply And (bits [ true; true; true ]));
  Alcotest.(check bool) "one reject" false
    (Dut_protocol.Rule.apply And (bits [ true; false; true ]))

let test_or_rule () =
  Alcotest.(check bool) "one accept" true
    (Dut_protocol.Rule.apply Or (bits [ false; true; false ]));
  Alcotest.(check bool) "none accept" false
    (Dut_protocol.Rule.apply Or (bits [ false; false ]))

let test_reject_threshold_rule () =
  let r t votes = Dut_protocol.Rule.apply (Reject_threshold t) (bits votes) in
  (* threshold 2: reject iff at least 2 rejections *)
  Alcotest.(check bool) "1 rejection accepted" true (r 2 [ true; false; true ]);
  Alcotest.(check bool) "2 rejections rejected" false (r 2 [ false; false; true ]);
  (* threshold 1 coincides with AND *)
  Alcotest.(check bool) "t=1 is AND (accept)" true (r 1 [ true; true ]);
  Alcotest.(check bool) "t=1 is AND (reject)" false (r 1 [ true; false ])

let test_reject_threshold_matches_paper_form () =
  (* Paper: f(x) = 1 exactly when sum x_i >= k - t. With k = 4, t = 2:
     accept iff at least 2 ones ... wait: sum >= k - t = 2.
     Our rule: accept iff rejections < t, i.e. ones > k - t. The paper's
     form uses >=; check the off-by-one convention explicitly: we accept
     on strictly fewer than t zeros. *)
  let r votes = Dut_protocol.Rule.apply (Reject_threshold 2) (bits votes) in
  Alcotest.(check bool) "3 ones, 1 zero" true (r [ true; true; true; false ]);
  Alcotest.(check bool) "2 ones, 2 zeros" false (r [ true; true; false; false ])

let test_accept_at_least () =
  let r votes = Dut_protocol.Rule.apply (Accept_at_least 3) (bits votes) in
  Alcotest.(check bool) "3 ones" true (r [ true; true; true; false ]);
  Alcotest.(check bool) "2 ones" false (r [ true; true; false; false ])

let test_majority () =
  let r votes = Dut_protocol.Rule.apply Majority (bits votes) in
  Alcotest.(check bool) "strict majority" true (r [ true; true; false ]);
  Alcotest.(check bool) "tie is reject" false (r [ true; false ])

let test_custom_rule () =
  let parity =
    Dut_protocol.Rule.Custom
      ( "parity",
        fun votes ->
          Array.fold_left (fun acc v -> if v then not acc else acc) false votes )
  in
  Alcotest.(check bool) "odd ones" true
    (Dut_protocol.Rule.apply parity (bits [ true; false; false ]));
  Alcotest.(check bool) "even ones" false
    (Dut_protocol.Rule.apply parity (bits [ true; true; false ]));
  Alcotest.(check string) "name" "parity" (Dut_protocol.Rule.name parity)

let test_rule_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Rule.apply: no players")
    (fun () -> ignore (Dut_protocol.Rule.apply And [||]));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Rule.apply: threshold must be positive") (fun () ->
      ignore (Dut_protocol.Rule.apply (Reject_threshold 0) (bits [ true ])))

let test_rule_names () =
  Alcotest.(check string) "and" "AND" (Dut_protocol.Rule.name And);
  Alcotest.(check string) "threshold" "reject>=3"
    (Dut_protocol.Rule.name (Reject_threshold 3));
  Alcotest.(check string) "majority" "majority" (Dut_protocol.Rule.name Majority)

let test_is_local () =
  Alcotest.(check bool) "AND local" true (Dut_protocol.Rule.is_local And);
  Alcotest.(check bool) "t=1 local" true
    (Dut_protocol.Rule.is_local (Reject_threshold 1));
  Alcotest.(check bool) "t=2 not local" false
    (Dut_protocol.Rule.is_local (Reject_threshold 2));
  Alcotest.(check bool) "majority not local" false
    (Dut_protocol.Rule.is_local Majority)

(* -- Network ---------------------------------------------------------- *)

let const_source value _rng = value

let test_round_basic () =
  let rng = Dut_prng.Rng.create 100 in
  (* Players vote accept iff every sample is even. *)
  let player ~index:_ _coins samples = Array.for_all (fun s -> s mod 2 = 0) samples in
  let t =
    Dut_protocol.Network.round ~rng ~source:(const_source 2) ~k:5 ~q:3 ~player
      ~rule:Dut_protocol.Rule.And
  in
  Alcotest.(check int) "vote count" 5 (Array.length t.votes);
  Alcotest.(check bool) "all accept" true t.accept

let test_round_determinism () =
  let run seed =
    let rng = Dut_prng.Rng.create seed in
    let player ~index:_ coins samples =
      (* Depends on both samples and private coins. *)
      (samples.(0) + Dut_prng.Rng.int coins 10) mod 2 = 0
    in
    let t =
      Dut_protocol.Network.round ~rng
        ~source:(fun r -> Dut_prng.Rng.int r 100)
        ~k:8 ~q:2 ~player ~rule:Dut_protocol.Rule.Majority
    in
    t.votes
  in
  Alcotest.(check (array bool)) "same seed same votes" (run 7) (run 7);
  Alcotest.(check bool) "different seeds eventually differ" true
    (List.exists (fun s -> run s <> run 7) [ 8; 9; 10; 11 ])

let test_round_player_index () =
  let rng = Dut_prng.Rng.create 101 in
  (* Only even-indexed players accept; majority of 5 is 3 -> accept. *)
  let player ~index _coins _samples = index mod 2 = 0 in
  let t =
    Dut_protocol.Network.round ~rng ~source:(const_source 0) ~k:5 ~q:1 ~player
      ~rule:Dut_protocol.Rule.Majority
  in
  Alcotest.(check bool) "majority accepts" true t.accept;
  Alcotest.(check (array bool)) "index-determined votes"
    [| true; false; true; false; true |] t.votes

let test_round_rates () =
  let rng = Dut_prng.Rng.create 102 in
  let seen = Array.make 3 (-1) in
  let player ~index _coins samples =
    seen.(index) <- Array.length samples;
    true
  in
  let _ =
    Dut_protocol.Network.round_rates ~rng ~source:(const_source 0)
      ~qs:[| 1; 5; 9 |] ~player ~rule:Dut_protocol.Rule.And
  in
  Alcotest.(check (array int)) "per-player sample counts" [| 1; 5; 9 |] seen

let test_round_errors () =
  let rng = Dut_prng.Rng.create 103 in
  let player ~index:_ _ _ = true in
  Alcotest.check_raises "k=0" (Invalid_argument "Network.round: k must be positive")
    (fun () ->
      ignore
        (Dut_protocol.Network.round ~rng ~source:(const_source 0) ~k:0 ~q:1
           ~player ~rule:Dut_protocol.Rule.And));
  Alcotest.check_raises "q<0"
    (Invalid_argument "Network.round: q must be non-negative") (fun () ->
      ignore
        (Dut_protocol.Network.round ~rng ~source:(const_source 0) ~k:1 ~q:(-1)
           ~player ~rule:Dut_protocol.Rule.And))

let test_round_messages () =
  let rng = Dut_prng.Rng.create 104 in
  let messenger ~index _coins samples = index + Array.length samples in
  let result =
    Dut_protocol.Network.round_messages ~rng ~source:(const_source 0) ~k:4 ~q:2
      ~messenger ~referee:(fun messages ->
        Alcotest.(check (array int)) "messages" [| 2; 3; 4; 5 |] messages;
        true)
  in
  Alcotest.(check bool) "referee verdict" true result

let test_sources () =
  let rng = Dut_prng.Rng.create 105 in
  let u = Dut_protocol.Network.uniform_source ~n:16 in
  for _ = 1 to 200 do
    let v = u rng in
    if v < 0 || v >= 16 then Alcotest.failf "uniform source out of range: %d" v
  done;
  let d = Dut_dist.Paninski.all_plus ~ell:2 ~eps:0.3 in
  let p = Dut_protocol.Network.of_paninski d in
  for _ = 1 to 200 do
    let v = p rng in
    if v < 0 || v >= 8 then Alcotest.failf "paninski source out of range: %d" v
  done;
  let s =
    Dut_protocol.Network.of_sampler
      (Dut_dist.Sampler.of_pmf (Dut_dist.Pmf.point_mass ~n:4 2))
  in
  Alcotest.(check int) "sampler source" 2 (s rng)

(* -- Calibrate -------------------------------------------------------- *)

let test_null_quantile () =
  let rng = Dut_prng.Rng.create 106 in
  (* Statistic = uniform on [0,1); 0.9-quantile ~ 0.9. *)
  let q =
    Dut_protocol.Calibrate.null_quantile ~trials:5000 rng
      ~stat:Dut_prng.Rng.unit_float ~p:0.9
  in
  Alcotest.(check bool) "near 0.9" true (Float.abs (q -. 0.9) < 0.05)

let test_reject_count_cutoff () =
  let rng = Dut_prng.Rng.create 107 in
  (* Rejects ~ Binomial(10, 0.3): cutoff must keep the empirical tail
     under the level. *)
  let rejects r = Dut_prng.Rng.binomial r 10 0.3 in
  let cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:4000 rng ~rejects
      ~level:0.1
  in
  (* Verify on fresh draws. *)
  let fresh = Dut_prng.Rng.create 108 in
  let exceeded = ref 0 in
  for _ = 1 to 4000 do
    if Dut_prng.Rng.binomial fresh 10 0.3 >= cutoff then incr exceeded
  done;
  Alcotest.(check bool) "empirical false alarm under level+slack" true
    (float_of_int !exceeded /. 4000. < 0.13)

let test_reject_count_cutoff_degenerate () =
  let rng = Dut_prng.Rng.create 109 in
  (* Constant statistic 5: cutoff must be 6 (reject only above). *)
  let cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:100 rng
      ~rejects:(fun _ -> 5)
      ~level:0.2
  in
  Alcotest.(check int) "one above the constant" 6 cutoff

let test_calibrate_errors () =
  let rng = Dut_prng.Rng.create 110 in
  Alcotest.check_raises "trials"
    (Invalid_argument "Calibrate.null_quantile: trials <= 0") (fun () ->
      ignore
        (Dut_protocol.Calibrate.null_quantile ~trials:0 rng
           ~stat:(fun _ -> 0.)
           ~p:0.5));
  Alcotest.check_raises "level"
    (Invalid_argument "Calibrate.reject_count_cutoff: level out of (0,1)")
    (fun () ->
      ignore
        (Dut_protocol.Calibrate.reject_count_cutoff ~trials:10 rng
           ~rejects:(fun _ -> 0)
           ~level:0.))

let prop_threshold_rule_monotone =
  (* Flipping a vote from reject to accept can only help acceptance. *)
  QCheck.Test.make ~name:"threshold rules are monotone" ~count:300
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 1 8) bool))
    (fun (t, votes) ->
      let votes = Array.of_list votes in
      let t = min t (Array.length votes) in
      let accept = Dut_protocol.Rule.apply (Reject_threshold t) votes in
      (not accept)
      ||
      (* strengthen every vote to accept: must still accept *)
      Dut_protocol.Rule.apply (Reject_threshold t)
        (Array.map (fun _ -> true) votes))

let () =
  Alcotest.run "dut_protocol"
    [
      ( "rule",
        [
          Alcotest.test_case "AND" `Quick test_and_rule;
          Alcotest.test_case "OR" `Quick test_or_rule;
          Alcotest.test_case "reject threshold" `Quick test_reject_threshold_rule;
          Alcotest.test_case "paper form" `Quick test_reject_threshold_matches_paper_form;
          Alcotest.test_case "accept at least" `Quick test_accept_at_least;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "custom" `Quick test_custom_rule;
          Alcotest.test_case "errors" `Quick test_rule_errors;
          Alcotest.test_case "names" `Quick test_rule_names;
          Alcotest.test_case "is_local" `Quick test_is_local;
        ] );
      ( "network",
        [
          Alcotest.test_case "basic round" `Quick test_round_basic;
          Alcotest.test_case "determinism" `Quick test_round_determinism;
          Alcotest.test_case "player index" `Quick test_round_player_index;
          Alcotest.test_case "rates" `Quick test_round_rates;
          Alcotest.test_case "errors" `Quick test_round_errors;
          Alcotest.test_case "messages" `Quick test_round_messages;
          Alcotest.test_case "sources" `Quick test_sources;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "null quantile" `Quick test_null_quantile;
          Alcotest.test_case "reject count cutoff" `Quick test_reject_count_cutoff;
          Alcotest.test_case "degenerate cutoff" `Quick test_reject_count_cutoff_degenerate;
          Alcotest.test_case "errors" `Quick test_calibrate_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_threshold_rule_monotone ] );
    ]
