(* Tests for the reduction layer: distribution families, the identity
   testing reduction (completeness), and the closeness tester. *)

let check_float = Alcotest.(check (float 1e-9))

(* -- Families ----------------------------------------------------------- *)

let sums_to_one p =
  let total = ref 0. in
  for i = 0 to Dut_dist.Pmf.size p - 1 do
    total := !total +. Dut_dist.Pmf.prob p i
  done;
  Float.abs (!total -. 1.) < 1e-9

let test_zipf_shape () =
  let p = Dut_dist.Families.zipf ~n:10 ~s:1. in
  Alcotest.(check bool) "sums to 1" true (sums_to_one p);
  Alcotest.(check bool) "decreasing" true
    (Dut_dist.Pmf.prob p 0 > Dut_dist.Pmf.prob p 5);
  check_float "harmonic ratio" 2.
    (Dut_dist.Pmf.prob p 0 /. Dut_dist.Pmf.prob p 1)

let test_zipf_s0_is_uniform () =
  let p = Dut_dist.Families.zipf ~n:8 ~s:0. in
  check_float "uniform at s=0" 0.125 (Dut_dist.Pmf.prob p 3)

let test_step_masses () =
  let p = Dut_dist.Families.step ~n:8 ~heavy_fraction:0.25 ~heavy_mass:0.5 in
  Alcotest.(check bool) "sums to 1" true (sums_to_one p);
  check_float "heavy element" 0.25 (Dut_dist.Pmf.prob p 0);
  check_float "light element" (0.5 /. 6.) (Dut_dist.Pmf.prob p 7)

let test_truncated_geometric () =
  let p = Dut_dist.Families.truncated_geometric ~n:6 ~ratio:0.5 in
  Alcotest.(check bool) "sums to 1" true (sums_to_one p);
  check_float "halving" 2. (Dut_dist.Pmf.prob p 0 /. Dut_dist.Pmf.prob p 1)

let test_perturb_pairwise_distance () =
  let rng = Dut_prng.Rng.create 210 in
  (* On the uniform base nothing clamps: the achieved distance is exactly
     (n/2 pairs) * 2 * eps/n = eps (for even n). *)
  let u = Dut_dist.Pmf.uniform 64 in
  for _ = 1 to 20 do
    let far, achieved = Dut_dist.Families.perturb_pairwise rng ~eps:0.3 u in
    check_float "achieved distance" 0.3 achieved;
    check_float "matches recomputation" achieved (Dut_dist.Distance.l1 far u);
    Alcotest.(check bool) "valid pmf" true (sums_to_one far)
  done

let test_perturb_pairwise_clamps () =
  let rng = Dut_prng.Rng.create 211 in
  (* A base with zero-mass elements forces clamping; achieved < eps but
     the result must still be a valid pmf at the reported distance. *)
  let base = Dut_dist.Pmf.create [| 0.5; 0.5; 0.; 0. |] in
  let far, achieved = Dut_dist.Families.perturb_pairwise rng ~eps:0.9 base in
  Alcotest.(check bool) "achieved at most eps" true (achieved <= 0.9 +. 1e-9);
  check_float "reported = actual" achieved (Dut_dist.Distance.l1 far base)

(* -- Identity ------------------------------------------------------------ *)

let test_identity_reduction_structure () =
  let target = Dut_dist.Families.zipf ~n:32 ~s:1. in
  let r = Dut_testers.Identity.make ~target ~eps:0.25 in
  let copies = Dut_testers.Identity.copies r in
  Alcotest.(check int) "granules sum to m"
    (Dut_testers.Identity.flattened_size r)
    (Array.fold_left ( + ) 0 copies);
  Alcotest.(check bool) "every element owns a granule" true
    (Array.for_all (fun c -> c >= 1) copies);
  (* m = ceil(8n/eps). *)
  Alcotest.(check int) "m value" 1024 (Dut_testers.Identity.flattened_size r)

let test_identity_map_sample_range () =
  let rng = Dut_prng.Rng.create 212 in
  let target = Dut_dist.Families.step ~n:16 ~heavy_fraction:0.5 ~heavy_mass:0.9 in
  let r = Dut_testers.Identity.make ~target ~eps:0.3 in
  let m = Dut_testers.Identity.flattened_size r in
  for _ = 1 to 2000 do
    let out = Dut_testers.Identity.map_sample r rng (Dut_prng.Rng.int rng 16) in
    if out < 0 || out >= m then Alcotest.failf "flattened sample out of range: %d" out
  done

let test_identity_flattens_target_to_uniform () =
  (* Samples from the target map to (near-)uniform on [m]: the flattened
     empirical collision rate should be ~1/m. *)
  let rng = Dut_prng.Rng.create 213 in
  let target = Dut_dist.Families.zipf ~n:16 ~s:1. in
  let r = Dut_testers.Identity.make ~target ~eps:0.4 in
  let m = Dut_testers.Identity.flattened_size r in
  let sampler = Dut_dist.Sampler.of_pmf target in
  let draws = 20000 in
  let flat =
    Array.init draws (fun _ ->
        Dut_testers.Identity.map_sample r rng (Dut_dist.Sampler.draw sampler rng))
  in
  let hist = Dut_dist.Empirical.of_samples ~n:m flat in
  let collision_rate =
    float_of_int (Dut_dist.Empirical.collision_pairs hist)
    /. (float_of_int draws *. float_of_int (draws - 1) /. 2.)
  in
  let uniform_rate = 1. /. float_of_int m in
  Alcotest.(check bool) "collision rate ~ 1/m" true
    (collision_rate < uniform_rate *. 1.05)

let test_identity_end_to_end () =
  let rng = Dut_prng.Rng.create 214 in
  let n = 64 in
  let eps = 0.4 in
  let target = Dut_dist.Families.step ~n ~heavy_fraction:0.25 ~heavy_mass:0.5 in
  let r = Dut_testers.Identity.make ~target ~eps in
  let m_samples = Dut_testers.Identity.recommended_samples ~n ~eps in
  let sampler = Dut_dist.Sampler.of_pmf target in
  let trials = 40 in
  let ok_target = ref 0 and ok_far = ref 0 in
  for _ = 1 to trials do
    let rr = Dut_prng.Rng.split rng in
    if
      Dut_testers.Identity.test r target rr
        (Dut_dist.Sampler.draw_many sampler rr m_samples)
    then incr ok_target;
    let far, _ = Dut_dist.Families.perturb_pairwise rr ~eps target in
    if
      not
        (Dut_testers.Identity.test r target rr
           (Dut_dist.Sampler.draw_many (Dut_dist.Sampler.of_pmf far) rr m_samples))
    then incr ok_far
  done;
  if float_of_int !ok_target /. float_of_int trials < 0.7 then
    Alcotest.failf "target acceptance too low (%d/%d)" !ok_target trials;
  if float_of_int !ok_far /. float_of_int trials < 0.7 then
    Alcotest.failf "far rejection too low (%d/%d)" !ok_far trials

let test_identity_errors () =
  Alcotest.check_raises "eps" (Invalid_argument "Identity.make: eps out of (0,1)")
    (fun () ->
      ignore (Dut_testers.Identity.make ~target:(Dut_dist.Pmf.uniform 4) ~eps:0.));
  let r = Dut_testers.Identity.make ~target:(Dut_dist.Pmf.uniform 4) ~eps:0.3 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Identity.test: target size mismatch") (fun () ->
      ignore
        (Dut_testers.Identity.test r (Dut_dist.Pmf.uniform 5)
           (Dut_prng.Rng.create 1) [| 0 |]))

(* -- Closeness ------------------------------------------------------------ *)

let test_closeness_statistic_identical_counts () =
  (* Same histograms: statistic = sum of -2x terms... with X=Y each term
     is -x-y = -2x; crafted: xs = ys -> Z = -(total of both). *)
  let xs = [| 0; 1; 2; 3 |] in
  check_float "equal samples" (-8.) (Dut_testers.Closeness.statistic ~n:4 xs xs)

let test_closeness_statistic_disjoint () =
  (* xs all on 0, ys all on 1, m each: Z = (m^2 - m) + (m^2 - m). *)
  let m = 5 in
  let xs = Array.make m 0 and ys = Array.make m 1 in
  check_float "disjoint" (2. *. float_of_int ((m * m) - m))
    (Dut_testers.Closeness.statistic ~n:4 xs ys)

let test_closeness_length_mismatch () =
  Alcotest.check_raises "lengths"
    (Invalid_argument "Closeness.statistic: sample counts differ") (fun () ->
      ignore (Dut_testers.Closeness.statistic ~n:4 [| 0 |] [| 0; 1 |]))

let test_closeness_power () =
  let rng = Dut_prng.Rng.create 215 in
  let n = 64 and eps = 0.4 in
  let m = Dut_testers.Closeness.recommended_samples ~n ~eps in
  let base = Dut_dist.Families.zipf ~n ~s:0.5 in
  let sampler = Dut_dist.Sampler.of_pmf base in
  let trials = 60 in
  let ok_equal = ref 0 and ok_far = ref 0 in
  for _ = 1 to trials do
    let r = Dut_prng.Rng.split rng in
    if
      Dut_testers.Closeness.test ~n ~eps
        (Dut_dist.Sampler.draw_many sampler r m)
        (Dut_dist.Sampler.draw_many sampler r m)
    then incr ok_equal;
    let far, _ = Dut_dist.Families.perturb_pairwise r ~eps base in
    if
      not
        (Dut_testers.Closeness.test ~n ~eps
           (Dut_dist.Sampler.draw_many sampler r m)
           (Dut_dist.Sampler.draw_many (Dut_dist.Sampler.of_pmf far) r m))
    then incr ok_far
  done;
  if float_of_int !ok_equal /. float_of_int trials < 0.7 then
    Alcotest.failf "equal acceptance too low (%d/%d)" !ok_equal trials;
  if float_of_int !ok_far /. float_of_int trials < 0.7 then
    Alcotest.failf "far rejection too low (%d/%d)" !ok_far trials

let test_closeness_contains_uniformity () =
  (* Closeness against known-uniform second samples is a uniformity
     tester (the introduction's 'special case' claim). *)
  let rng = Dut_prng.Rng.create 216 in
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.4 in
  let m = Dut_testers.Closeness.recommended_samples ~n ~eps in
  let trials = 50 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let r = Dut_prng.Rng.split rng in
    let d = Dut_dist.Paninski.random ~ell ~eps r in
    let unif = Array.init m (fun _ -> Dut_prng.Rng.int r n) in
    if not (Dut_testers.Closeness.test ~n ~eps (Dut_dist.Paninski.draw_many d r m) unif)
    then incr ok
  done;
  if float_of_int !ok /. float_of_int trials < 0.7 then
    Alcotest.failf "uniformity via closeness too weak (%d/%d)" !ok trials

(* -- Independence ----------------------------------------------------------- *)

let test_independence_encode_decode () =
  for a = 0 to 3 do
    for b = 0 to 4 do
      let i = Dut_testers.Independence.encode ~n2:5 (a, b) in
      Alcotest.(check (pair int int)) "roundtrip" (a, b)
        (Dut_testers.Independence.decode ~n2:5 i)
    done
  done

let test_decorrelate_preserves_marginals () =
  let rng = Dut_prng.Rng.create 220 in
  let n2 = 4 in
  let samples =
    Array.init 200 (fun i -> Dut_testers.Independence.encode ~n2 (i mod 3, i mod 4))
  in
  let shuffled = Dut_testers.Independence.decorrelate rng ~n2 samples in
  let marginal pick arr =
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun s ->
        let v = pick (Dut_testers.Independence.decode ~n2 s) in
        Hashtbl.replace counts v (1 + try Hashtbl.find counts v with Not_found -> 0))
      arr;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  Alcotest.(check (list (pair int int))) "first marginal preserved"
    (marginal fst samples) (marginal fst shuffled);
  Alcotest.(check (list (pair int int))) "second marginal preserved"
    (marginal snd samples) (marginal snd shuffled)

let test_independence_power () =
  let rng = Dut_prng.Rng.create 221 in
  let n1 = 8 and n2 = 8 in
  let eps = 0.5 in
  let m = Dut_testers.Independence.recommended_samples ~n1 ~n2 ~eps in
  (* Independent joint: uniform x zipf. *)
  let marginal2 = Dut_dist.Families.zipf ~n:n2 ~s:0.5 in
  let s2 = Dut_dist.Sampler.of_pmf marginal2 in
  let draw_independent r =
    Dut_testers.Independence.encode ~n2
      (Dut_prng.Rng.int r n1, Dut_dist.Sampler.draw s2 r)
  in
  (* Correlated joint: with prob 1/2 force b = a (a diagonal spike),
     far from every product distribution. *)
  let draw_correlated r =
    let a = Dut_prng.Rng.int r n1 in
    let b = if Dut_prng.Rng.bool r then a else Dut_dist.Sampler.draw s2 r in
    Dut_testers.Independence.encode ~n2 (a, b)
  in
  let trials = 40 in
  let ok_indep = ref 0 and ok_corr = ref 0 in
  for _ = 1 to trials do
    let r = Dut_prng.Rng.split rng in
    let samples draw = Array.init m (fun _ -> draw r) in
    if Dut_testers.Independence.test ~n1 ~n2 ~eps r (samples draw_independent)
    then incr ok_indep;
    if not (Dut_testers.Independence.test ~n1 ~n2 ~eps r (samples draw_correlated))
    then incr ok_corr
  done;
  if float_of_int !ok_indep /. float_of_int trials < 0.7 then
    Alcotest.failf "independent case too weak (%d/%d)" !ok_indep trials;
  if float_of_int !ok_corr /. float_of_int trials < 0.7 then
    Alcotest.failf "correlated case too weak (%d/%d)" !ok_corr trials

let test_independence_errors () =
  let rng = Dut_prng.Rng.create 222 in
  Alcotest.check_raises "too few"
    (Invalid_argument "Independence.test: need at least 4 samples") (fun () ->
      ignore (Dut_testers.Independence.test ~n1:2 ~n2:2 ~eps:0.3 rng [| 0; 1 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Independence.test: sample out of range") (fun () ->
      ignore (Dut_testers.Independence.test ~n1:2 ~n2:2 ~eps:0.3 rng [| 0; 1; 2; 4 |]))

let prop_perturb_preserves_validity =
  QCheck.Test.make ~name:"pairwise perturbation yields valid pmfs" ~count:100
    QCheck.(pair small_int (float_range 0.05 0.8))
    (fun (seed, eps) ->
      let rng = Dut_prng.Rng.create seed in
      let base = Dut_dist.Families.zipf ~n:32 ~s:1. in
      let far, achieved = Dut_dist.Families.perturb_pairwise rng ~eps base in
      achieved <= eps +. 1e-9
      && Float.abs (Dut_dist.Distance.l1 far base -. achieved) < 1e-9)

let () =
  Alcotest.run "dut_reductions"
    [
      ( "families",
        [
          Alcotest.test_case "zipf" `Quick test_zipf_shape;
          Alcotest.test_case "zipf s=0" `Quick test_zipf_s0_is_uniform;
          Alcotest.test_case "step" `Quick test_step_masses;
          Alcotest.test_case "truncated geometric" `Quick test_truncated_geometric;
          Alcotest.test_case "perturb distance" `Quick test_perturb_pairwise_distance;
          Alcotest.test_case "perturb clamps" `Quick test_perturb_pairwise_clamps;
        ] );
      ( "identity",
        [
          Alcotest.test_case "reduction structure" `Quick test_identity_reduction_structure;
          Alcotest.test_case "map sample range" `Quick test_identity_map_sample_range;
          Alcotest.test_case "flattens to uniform" `Slow
            test_identity_flattens_target_to_uniform;
          Alcotest.test_case "end to end" `Slow test_identity_end_to_end;
          Alcotest.test_case "errors" `Quick test_identity_errors;
        ] );
      ( "closeness",
        [
          Alcotest.test_case "equal histograms" `Quick
            test_closeness_statistic_identical_counts;
          Alcotest.test_case "disjoint histograms" `Quick test_closeness_statistic_disjoint;
          Alcotest.test_case "length mismatch" `Quick test_closeness_length_mismatch;
          Alcotest.test_case "power" `Slow test_closeness_power;
          Alcotest.test_case "contains uniformity" `Slow test_closeness_contains_uniformity;
        ] );
      ( "independence",
        [
          Alcotest.test_case "encode/decode" `Quick test_independence_encode_decode;
          Alcotest.test_case "decorrelate marginals" `Quick
            test_decorrelate_preserves_marginals;
          Alcotest.test_case "power" `Slow test_independence_power;
          Alcotest.test_case "errors" `Quick test_independence_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_perturb_preserves_validity ] );
    ]
