(* Tests for Dut_service: the wire codec's roundtrip and canonical-form
   guarantees, the two-tier memo cache (including its corruption and
   eviction paths), and handle_batch's contracts — failure isolation,
   cold/warm byte-identity through the cache, and jobs-invariance. *)

open Dut_service
module J = Dut_obs.Json

let sample_queries =
  [
    Query.Bound
      { name = "centralized"; params = [ ("eps", 0.25); ("n", 4096.) ] };
    Query.Bound
      {
        name = "thm11_lower";
        params = [ ("eps", 0.3); ("k", 64.); ("n", 1024.) ];
      };
    Query.Power
      {
        tester = Query.And;
        ell = 5;
        eps = 0.25;
        k = 16;
        q = 4;
        trials = 40;
        level = 0.72;
        seed = 7;
        adaptive = true;
      };
    Query.Critical
      {
        tester = Query.Threshold 2;
        ell = 5;
        eps = 0.25;
        k = 16;
        trials = 40;
        level = 0.72;
        seed = 7;
        adaptive = false;
        hi = Some 4096;
        guess = Some 32;
      };
  ]

(* -- Codec --------------------------------------------------------------- *)

let test_codec_roundtrip () =
  List.iteri
    (fun i q ->
      let line = Query.request_to_line ~id:i q in
      let r = Query.request_of_line line in
      Alcotest.(check int) "id survives" i r.Query.id;
      match r.Query.query with
      | Ok q' ->
          Alcotest.(check string)
            "canonical form survives the roundtrip" (Query.canonical q)
            (Query.canonical q')
      | Error msg -> Alcotest.failf "roundtrip rejected %s: %s" line msg)
    sample_queries

let test_codec_defaults_spelled_out () =
  (* A minimal wire query and the fully spelled-out one canonicalise
     identically: trials/level/seed/adaptive defaults are part of the
     canonical form, so they are part of the memo key. *)
  let minimal =
    Query.request_of_line
      {|{"kind":"power","tester":"and","ell":5,"eps":0.25,"k":16,"q":4}|}
  in
  let explicit =
    Query.Power
      {
        tester = Query.And;
        ell = 5;
        eps = 0.25;
        k = 16;
        q = 4;
        trials = 120;
        level = 0.72;
        seed = 2019;
        adaptive = true;
      }
  in
  match minimal.Query.query with
  | Error msg -> Alcotest.failf "minimal query rejected: %s" msg
  | Ok q ->
      Alcotest.(check string)
        "defaults fill in to the explicit canonical form"
        (Query.canonical explicit) (Query.canonical q)

let test_codec_errors () =
  List.iter
    (fun line ->
      match (Query.request_of_line line).Query.query with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed query %s" line)
    [
      "not json";
      {|{"kind":"nope"}|};
      {|{"kind":"power","tester":"xor","ell":5,"eps":0.25,"k":16,"q":4}|};
      {|{"kind":"power","tester":"and","ell":5,"eps":1.5,"k":16,"q":4}|};
      {|{"kind":"power","tester":"and","ell":5,"eps":0.25,"k":16}|};
      {|{"kind":"power","tester":"and","ell":0,"eps":0.25,"k":16,"q":4}|};
      {|{"kind":"bound","name":"centralized"}|};
      {|{"kind":"critical","tester":"threshold","ell":5,"eps":0.25,"k":16}|};
    ]

let test_response_line_splice () =
  Alcotest.(check string)
    "id spliced verbatim" {|{"id":3,"status":"ok","value":5}|}
    (Query.response_line ~id:3 (Query.ok_payload (J.int 5)))

(* -- Evaluation ---------------------------------------------------------- *)

let test_bound_eval_matches_direct () =
  let check name params expect =
    match Query.eval (Query.Bound { name; params }) with
    | J.Num v -> Alcotest.(check (float 0.)) name expect v
    | _ -> Alcotest.failf "%s: expected a number" name
  in
  check "centralized"
    [ ("eps", 0.25); ("n", 4096.) ]
    (Dut_core.Bounds.centralized ~n:4096 ~eps:0.25);
  check "thm11_lower"
    [ ("eps", 0.3); ("k", 64.); ("n", 1024.) ]
    (Dut_core.Bounds.thm11_lower ~n:1024 ~k:64 ~eps:0.3);
  check "thm14_learning_nodes"
    [ ("n", 4096.); ("q", 4.) ]
    (Dut_core.Bounds.thm14_learning_nodes ~n:4096 ~q:4)

let test_bound_eval_failures () =
  List.iter
    (fun q ->
      match Query.eval q with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")
    [
      Query.Bound { name = "no_such_bound"; params = [] };
      Query.Bound { name = "centralized"; params = [ ("n", 4096.) ] };
    ]

(* -- Memo ---------------------------------------------------------------- *)

let counter = Dut_obs.Metrics.value

let test_memo_memory_tier () =
  let m = Memo.create ~capacity:8 () in
  let hits0 = counter "cache.hits" and misses0 = counter "cache.misses" in
  Alcotest.(check (option string)) "empty cache misses" None (Memo.find m ~key:"a");
  Memo.store m ~key:"a" "payload-a";
  Alcotest.(check (option string))
    "stored payload found" (Some "payload-a") (Memo.find m ~key:"a");
  Alcotest.(check int) "one hit tallied" (hits0 + 1) (counter "cache.hits");
  Alcotest.(check int) "one miss tallied" (misses0 + 1) (counter "cache.misses")

let test_memo_lru_eviction () =
  let m = Memo.create ~capacity:2 () in
  Memo.store m ~key:"a" "pa";
  Memo.store m ~key:"b" "pb";
  ignore (Memo.find m ~key:"a");
  (* "b" is now least recently used; the third store evicts it. *)
  Memo.store m ~key:"c" "pc";
  Alcotest.(check int) "capacity respected" 2 (Memo.entries m);
  Alcotest.(check (option string)) "recently used survives" (Some "pa")
    (Memo.find m ~key:"a");
  Alcotest.(check (option string)) "LRU entry evicted" None (Memo.find m ~key:"b")

let with_temp_dir f =
  let dir = Filename.temp_file "dut_memo" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_memo_disk_persistence () =
  with_temp_dir @@ fun dir ->
  let m1 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Memo.store m1 ~key:"query-key" "payload-bytes";
  (* A fresh instance — empty memory front — must hydrate from disk. *)
  let m2 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Alcotest.(check int) "fresh front is empty" 0 (Memo.entries m2);
  Alcotest.(check (option string))
    "payload replayed from disk" (Some "payload-bytes")
    (Memo.find m2 ~key:"query-key");
  Alcotest.(check int) "disk hit re-promoted" 1 (Memo.entries m2)

let test_memo_corruption_is_a_miss () =
  with_temp_dir @@ fun dir ->
  let m1 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Memo.store m1 ~key:"k" "good-bytes";
  (* Truncate every stored file: a fresh instance must read a miss,
     never a wrong or partial answer. *)
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let oc = open_out path in
      output_string oc "{\"schema\":\"dut-memo/1\"";
      close_out oc)
    (Sys.readdir dir);
  let m2 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Alcotest.(check (option string))
    "corrupt entry is a miss" None (Memo.find m2 ~key:"k")

(* -- handle_batch -------------------------------------------------------- *)

let batch_of_lines lines =
  Array.of_list (List.map Query.request_of_line lines)

let good_line id =
  Printf.sprintf
    {|{"id":%d,"kind":"bound","name":"centralized","params":{"n":4096,"eps":0.25}}|}
    id

let test_batch_failure_isolation () =
  let responses =
    Server.handle_batch ~jobs:2
      (batch_of_lines
         [
           good_line 0;
           {|{"id":1,"kind":"bound","name":"no_such_bound","params":{}}|};
           "not json at all";
           good_line 3;
         ])
  in
  let has needle s = Astring.String.is_infix ~affix:needle s in
  Alcotest.(check int) "one response per request" 4 (Array.length responses);
  Alcotest.(check bool) "request 0 ok" true (has {|"status":"ok"|} responses.(0));
  Alcotest.(check bool)
    "unknown bound isolated" true
    (has {|"status":"error"|} responses.(1) && has "no_such_bound" responses.(1));
  Alcotest.(check bool)
    "parse failure isolated (id -1)" true
    (has {|"id":-1|} responses.(2) && has {|"status":"error"|} responses.(2));
  Alcotest.(check bool) "sibling of failures ok" true
    (has {|"status":"ok"|} responses.(3))

let mixed_lines =
  [
    good_line 0;
    {|{"id":1,"kind":"power","tester":"and","ell":5,"eps":0.25,"k":16,"q":4,"trials":30,"seed":7}|};
    {|{"id":2,"kind":"critical","tester":"threshold","t":1,"ell":5,"eps":0.25,"k":16,"trials":30,"seed":7}|};
    {|{"id":3,"kind":"bound","name":"no_such_bound","params":{}}|};
  ]

let test_batch_cold_warm_byte_identity () =
  let cache = Memo.create ~capacity:64 () in
  let run () =
    Server.handle_batch ~cache ~stamp:"test-stamp" ~jobs:2
      (batch_of_lines mixed_lines)
  in
  let hits0 = counter "cache.hits" in
  let cold = run () in
  Alcotest.(check int) "cold pass has no hits" hits0 (counter "cache.hits");
  let warm = run () in
  Alcotest.(check (array string)) "warm replay is byte-identical" cold warm;
  (* The three ok answers replay from cache; the error recomputes. *)
  Alcotest.(check int) "warm pass hits = ok responses" (hits0 + 3)
    (counter "cache.hits");
  let errors_cached =
    Array.exists (fun r -> Astring.String.is_infix ~affix:"no_such_bound" r) warm
  in
  Alcotest.(check bool) "error response still present" true errors_cached

let test_batch_jobs_invariant () =
  let run jobs = Server.handle_batch ~jobs (batch_of_lines mixed_lines) in
  Alcotest.(check (array string)) "jobs=1 == jobs=4" (run 1) (run 4)

let test_batch_deadline_isolated () =
  (* An adversarially tight (but valid) deadline trips at the first
     engine check point inside the Monte-Carlo probes and must surface
     as an error response, not an exception. *)
  let deadline_s = 1e-6 in
  let responses =
    Server.handle_batch ~deadline_s ~jobs:2
      (batch_of_lines
         [
           {|{"id":0,"kind":"critical","tester":"and","ell":8,"eps":0.25,"k":16,"trials":4000,"adaptive":false,"seed":7}|};
         ])
  in
  Alcotest.(check bool)
    "over-budget query answers with a deadline error" true
    (Astring.String.is_infix ~affix:"deadline" responses.(0))

let () =
  Alcotest.run "dut_service"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "defaults in canonical form" `Quick
            test_codec_defaults_spelled_out;
          Alcotest.test_case "malformed queries rejected" `Quick
            test_codec_errors;
          Alcotest.test_case "response id splice" `Quick
            test_response_line_splice;
        ] );
      ( "eval",
        [
          Alcotest.test_case "bounds match direct calls" `Quick
            test_bound_eval_matches_direct;
          Alcotest.test_case "bad bounds fail" `Quick test_bound_eval_failures;
        ] );
      ( "memo",
        [
          Alcotest.test_case "memory tier" `Quick test_memo_memory_tier;
          Alcotest.test_case "LRU eviction" `Quick test_memo_lru_eviction;
          Alcotest.test_case "disk persistence" `Quick
            test_memo_disk_persistence;
          Alcotest.test_case "corruption reads as miss" `Quick
            test_memo_corruption_is_a_miss;
        ] );
      ( "batch",
        [
          Alcotest.test_case "failure isolation" `Quick
            test_batch_failure_isolation;
          Alcotest.test_case "cold/warm byte-identity" `Quick
            test_batch_cold_warm_byte_identity;
          Alcotest.test_case "jobs-invariance" `Quick test_batch_jobs_invariant;
          Alcotest.test_case "deadline isolation" `Quick
            test_batch_deadline_isolated;
        ] );
    ]
