(* Tests for Dut_service: the wire codec's roundtrip and canonical-form
   guarantees, the two-tier memo cache (including its corruption and
   eviction paths), and handle_batch's contracts — failure isolation,
   cold/warm byte-identity through the cache, and jobs-invariance. *)

open Dut_service
module J = Dut_obs.Json

let sample_queries =
  [
    Query.Bound
      { name = "centralized"; params = [ ("eps", 0.25); ("n", 4096.) ] };
    Query.Bound
      {
        name = "thm11_lower";
        params = [ ("eps", 0.3); ("k", 64.); ("n", 1024.) ];
      };
    Query.Power
      {
        tester = Query.And;
        ell = 5;
        eps = 0.25;
        k = 16;
        q = 4;
        trials = 40;
        level = 0.72;
        seed = 7;
        adaptive = true;
      };
    Query.Critical
      {
        tester = Query.Threshold 2;
        ell = 5;
        eps = 0.25;
        k = 16;
        trials = 40;
        level = 0.72;
        seed = 7;
        adaptive = false;
        hi = Some 4096;
        guess = Some 32;
      };
  ]

(* -- Codec --------------------------------------------------------------- *)

let test_codec_roundtrip () =
  List.iteri
    (fun i q ->
      let line = Query.request_to_line ~id:i q in
      let r = Query.request_of_line line in
      Alcotest.(check int) "id survives" i r.Query.id;
      match r.Query.query with
      | Ok q' ->
          Alcotest.(check string)
            "canonical form survives the roundtrip" (Query.canonical q)
            (Query.canonical q')
      | Error msg -> Alcotest.failf "roundtrip rejected %s: %s" line msg)
    sample_queries

let test_codec_defaults_spelled_out () =
  (* A minimal wire query and the fully spelled-out one canonicalise
     identically: trials/level/seed/adaptive defaults are part of the
     canonical form, so they are part of the memo key. *)
  let minimal =
    Query.request_of_line
      {|{"kind":"power","tester":"and","ell":5,"eps":0.25,"k":16,"q":4}|}
  in
  let explicit =
    Query.Power
      {
        tester = Query.And;
        ell = 5;
        eps = 0.25;
        k = 16;
        q = 4;
        trials = 120;
        level = 0.72;
        seed = 2019;
        adaptive = true;
      }
  in
  match minimal.Query.query with
  | Error msg -> Alcotest.failf "minimal query rejected: %s" msg
  | Ok q ->
      Alcotest.(check string)
        "defaults fill in to the explicit canonical form"
        (Query.canonical explicit) (Query.canonical q)

let test_codec_errors () =
  List.iter
    (fun line ->
      match (Query.request_of_line line).Query.query with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed query %s" line)
    [
      "not json";
      {|{"kind":"nope"}|};
      {|{"kind":"power","tester":"xor","ell":5,"eps":0.25,"k":16,"q":4}|};
      {|{"kind":"power","tester":"and","ell":5,"eps":1.5,"k":16,"q":4}|};
      {|{"kind":"power","tester":"and","ell":5,"eps":0.25,"k":16}|};
      {|{"kind":"power","tester":"and","ell":0,"eps":0.25,"k":16,"q":4}|};
      {|{"kind":"bound","name":"centralized"}|};
      {|{"kind":"critical","tester":"threshold","ell":5,"eps":0.25,"k":16}|};
    ]

let test_response_line_splice () =
  Alcotest.(check string)
    "id spliced verbatim" {|{"id":3,"status":"ok","value":5}|}
    (Query.response_line ~id:3 (Query.ok_payload (J.int 5)))

(* -- Evaluation ---------------------------------------------------------- *)

let test_bound_eval_matches_direct () =
  let check name params expect =
    match Query.eval (Query.Bound { name; params }) with
    | J.Num v -> Alcotest.(check (float 0.)) name expect v
    | _ -> Alcotest.failf "%s: expected a number" name
  in
  check "centralized"
    [ ("eps", 0.25); ("n", 4096.) ]
    (Dut_core.Bounds.centralized ~n:4096 ~eps:0.25);
  check "thm11_lower"
    [ ("eps", 0.3); ("k", 64.); ("n", 1024.) ]
    (Dut_core.Bounds.thm11_lower ~n:1024 ~k:64 ~eps:0.3);
  check "thm14_learning_nodes"
    [ ("n", 4096.); ("q", 4.) ]
    (Dut_core.Bounds.thm14_learning_nodes ~n:4096 ~q:4)

let test_bound_eval_failures () =
  List.iter
    (fun q ->
      match Query.eval q with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")
    [
      Query.Bound { name = "no_such_bound"; params = [] };
      Query.Bound { name = "centralized"; params = [ ("n", 4096.) ] };
    ]

(* -- Memo ---------------------------------------------------------------- *)

let counter = Dut_obs.Metrics.value

let test_memo_memory_tier () =
  let m = Memo.create ~capacity:8 () in
  let hits0 = counter "cache.hits" and misses0 = counter "cache.misses" in
  Alcotest.(check (option string)) "empty cache misses" None (Memo.find m ~key:"a");
  Memo.store m ~key:"a" "payload-a";
  Alcotest.(check (option string))
    "stored payload found" (Some "payload-a") (Memo.find m ~key:"a");
  Alcotest.(check int) "one hit tallied" (hits0 + 1) (counter "cache.hits");
  Alcotest.(check int) "one miss tallied" (misses0 + 1) (counter "cache.misses")

let test_memo_lru_eviction () =
  let m = Memo.create ~capacity:2 () in
  Memo.store m ~key:"a" "pa";
  Memo.store m ~key:"b" "pb";
  ignore (Memo.find m ~key:"a");
  (* "b" is now least recently used; the third store evicts it. *)
  Memo.store m ~key:"c" "pc";
  Alcotest.(check int) "capacity respected" 2 (Memo.entries m);
  Alcotest.(check (option string)) "recently used survives" (Some "pa")
    (Memo.find m ~key:"a");
  Alcotest.(check (option string)) "LRU entry evicted" None (Memo.find m ~key:"b")

let with_temp_dir f =
  let dir = Filename.temp_file "dut_memo" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_memo_disk_persistence () =
  with_temp_dir @@ fun dir ->
  let m1 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Memo.store m1 ~key:"query-key" "payload-bytes";
  (* A fresh instance — empty memory front — must hydrate from disk. *)
  let m2 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Alcotest.(check int) "fresh front is empty" 0 (Memo.entries m2);
  Alcotest.(check (option string))
    "payload replayed from disk" (Some "payload-bytes")
    (Memo.find m2 ~key:"query-key");
  Alcotest.(check int) "disk hit re-promoted" 1 (Memo.entries m2)

let test_memo_corruption_is_a_miss () =
  with_temp_dir @@ fun dir ->
  let m1 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Memo.store m1 ~key:"k" "good-bytes";
  (* Truncate every stored file: a fresh instance must read a miss,
     never a wrong or partial answer. *)
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let oc = open_out path in
      output_string oc "{\"schema\":\"dut-memo/1\"";
      close_out oc)
    (Sys.readdir dir);
  let m2 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Alcotest.(check (option string))
    "corrupt entry is a miss" None (Memo.find m2 ~key:"k")

let test_memo_write_once_sequential () =
  with_temp_dir @@ fun dir ->
  let races0 = counter "cache.store_races"
  and fails0 = counter "cache.write_failures" in
  let m1 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Memo.store m1 ~key:"k" "first-payload";
  (* A second instance storing the same key finds it already published:
     a counted no-op, not a write failure, and never an overwrite. *)
  let m2 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Memo.store m2 ~key:"k" "second-payload";
  Alcotest.(check int) "race counted" (races0 + 1)
    (counter "cache.store_races");
  Alcotest.(check int) "no write failure" fails0
    (counter "cache.write_failures");
  let m3 = Memo.create ~capacity:8 ~dir:(Some dir) () in
  Alcotest.(check (option string))
    "first store won" (Some "first-payload")
    (Memo.find m3 ~key:"k")

(* Two processes hammering the same keys — shards of a fleet sharing
   one store. Must run before anything creates pool domains: forking
   an OCaml 5 runtime with live domains is unsafe. *)
let test_memo_write_once_concurrent () =
  with_temp_dir @@ fun dir ->
  let fails0 = counter "cache.write_failures" in
  let keys = 100 in
  let spawn payload =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let m = Memo.create ~capacity:8 ~dir:(Some dir) () in
            for i = 0 to keys - 1 do
              Memo.store m ~key:(string_of_int i) payload
            done;
            0
          with _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  let a = spawn "payload-A" in
  let b = spawn "payload-B" in
  let status pid = snd (Unix.waitpid [] pid) in
  let sa = status a and sb = status b in
  Alcotest.(check bool) "both writers exited cleanly" true
    (sa = Unix.WEXITED 0 && sb = Unix.WEXITED 0);
  (* Exactly one intact winner per key: one file, bytes of one writer,
     never torn. *)
  Alcotest.(check int) "one file per key" keys
    (Array.length (Sys.readdir dir));
  let m = Memo.create ~capacity:(2 * keys) ~dir:(Some dir) () in
  for i = 0 to keys - 1 do
    match Memo.find m ~key:(string_of_int i) with
    | Some ("payload-A" | "payload-B") -> ()
    | Some other -> Alcotest.failf "key %d: torn payload %S" i other
    | None -> Alcotest.failf "key %d: no winner published" i
  done;
  Alcotest.(check int) "no write failures in the parent" fails0
    (counter "cache.write_failures")

(* -- Socket liveness probe ----------------------------------------------- *)

let test_socket_liveness_probe () =
  let path = Filename.temp_file "dut_sock" "" in
  Sys.remove path;
  (* A live listener on the path: starting a second server here would
     steal the socket from under it, so prepare_socket must refuse. *)
  let listener = Server.bind_listener path in
  (match Server.prepare_socket path with
  | () -> Alcotest.fail "prepare_socket accepted a live socket"
  | exception Failure msg ->
      Alcotest.(check bool) "refusal names the running server" true
        (Astring.String.is_infix ~affix:"running server" msg));
  Alcotest.(check bool) "live socket file untouched" true
    (Sys.file_exists path);
  Unix.close listener;
  (* The same file with its server gone is stale: silently unlinked. *)
  Server.prepare_socket path;
  Alcotest.(check bool) "stale socket unlinked" false (Sys.file_exists path);
  (* A non-socket at the path is never deleted. *)
  let oc = open_out path in
  close_out oc;
  (match Server.prepare_socket path with
  | () -> Alcotest.fail "prepare_socket accepted a non-socket"
  | exception Failure msg ->
      Alcotest.(check bool) "refusal says not a socket" true
        (Astring.String.is_infix ~affix:"not a socket" msg));
  Alcotest.(check bool) "non-socket file untouched" true
    (Sys.file_exists path);
  Sys.remove path

(* -- Client timeout and duplicate responses ------------------------------ *)

(* A stub server (forked, so: before any pool test) that answers id 0
   twice and never answers id 1 — the client must count the duplicate
   as a no-op, fill the missing slot with the "no response received"
   payload at the deadline, and exit 2. *)
let test_client_timeout_and_duplicates () =
  let path = Filename.temp_file "dut_stub" "" in
  Sys.remove path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 8;
  let stub () =
    let conn, _ = Unix.accept listener in
    let buf = Bytes.create 4096 in
    let seen = ref 0 in
    while !seen < 2 do
      match Unix.read conn buf 0 (Bytes.length buf) with
      | 0 -> seen := 2
      | n ->
          for i = 0 to n - 1 do
            if Bytes.get buf i = '\n' then incr seen
          done
    done;
    let line = {|{"id":0,"status":"ok","value":1}|} ^ "\n" in
    let payload = Bytes.of_string (line ^ line) in
    ignore (Unix.write conn payload 0 (Bytes.length payload));
    (* Hold the connection open so the client times out instead of
       seeing EOF. *)
    Unix.sleepf 5.;
    Unix.close conn;
    0
  in
  match Unix.fork () with
  | 0 -> Unix._exit (try stub () with _ -> 1)
  | pid ->
      Unix.close listener;
      let out_path = Filename.temp_file "dut_client" ".out" in
      let oc = open_out out_path in
      let dups0 = counter "service.duplicate_responses" in
      let code =
        Client.run ~timeout_s:0.5 ~socket:path ~out:oc
          [
            {|{"kind":"bound","name":"centralized","params":{"n":4096,"eps":0.25}}|};
            {|{"kind":"bound","name":"centralized","params":{"n":2048,"eps":0.25}}|};
          ]
      in
      close_out oc;
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      let ic = open_in out_path in
      let out = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove out_path;
      (try Sys.remove path with Sys_error _ -> ());
      Alcotest.(check int) "timeout exits 2" 2 code;
      Alcotest.(check int) "still one line per request" 2
        (List.length
           (List.filter
              (fun l -> l <> "")
              (String.split_on_char '\n' out)));
      Alcotest.(check bool) "unanswered slot filled" true
        (Astring.String.is_infix ~affix:"no response received" out);
      Alcotest.(check bool) "answered slot kept the first response" true
        (Astring.String.is_infix ~affix:{|"id":0,"status":"ok","value":1|} out);
      Alcotest.(check int) "duplicate counted once" (dups0 + 1)
        (counter "service.duplicate_responses")

(* -- Consistent-hash ring ------------------------------------------------ *)

let test_ring_range_and_determinism () =
  for shards = 1 to 6 do
    for i = 0 to 199 do
      let key = Printf.sprintf "key-%d" i in
      let s = Shard.shard_of_key ~shards key in
      if s < 0 || s >= shards then
        Alcotest.failf "shards=%d key %s: out of range %d" shards key s;
      Alcotest.(check int) "deterministic" s (Shard.shard_of_key ~shards key)
    done
  done

let test_ring_distribution () =
  let shards = 4 and keys = 2000 in
  let counts = Array.make shards 0 in
  for i = 0 to keys - 1 do
    let s = Shard.shard_of_key ~shards (Printf.sprintf "query-%d" i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d gets a fair share (%d of %d keys)" s c keys)
        true
        (c > keys / (shards * 4)))
    counts

let test_ring_growth_stability () =
  (* Growing the fleet N -> N+1 must only move keys onto the new shard,
     and only ~1/(N+1) of them (3x slack for hash variance) — the
     property that makes re-sharding cheap for the shared store. *)
  let keys = 2000 in
  List.iter
    (fun shards ->
      let moved = ref 0 in
      for i = 0 to keys - 1 do
        let key = Printf.sprintf "query-%d" i in
        let before = Shard.shard_of_key ~shards key in
        let after = Shard.shard_of_key ~shards:(shards + 1) key in
        if after <> before then begin
          incr moved;
          Alcotest.(check int) "a moved key lands on the new shard" shards
            after
        end
      done;
      Alcotest.(check bool)
        (Printf.sprintf "N=%d: %d of %d keys moved" shards !moved keys)
        true
        (!moved * (shards + 1) < 3 * keys))
    [ 1; 2; 3; 4 ]

(* -- handle_batch -------------------------------------------------------- *)

let batch_of_lines lines =
  Array.of_list (List.map Query.request_of_line lines)

let good_line id =
  Printf.sprintf
    {|{"id":%d,"kind":"bound","name":"centralized","params":{"n":4096,"eps":0.25}}|}
    id

let test_batch_failure_isolation () =
  let responses =
    Server.handle_batch ~jobs:2
      (batch_of_lines
         [
           good_line 0;
           {|{"id":1,"kind":"bound","name":"no_such_bound","params":{}}|};
           "not json at all";
           good_line 3;
         ])
  in
  let has needle s = Astring.String.is_infix ~affix:needle s in
  Alcotest.(check int) "one response per request" 4 (Array.length responses);
  Alcotest.(check bool) "request 0 ok" true (has {|"status":"ok"|} responses.(0));
  Alcotest.(check bool)
    "unknown bound isolated" true
    (has {|"status":"error"|} responses.(1) && has "no_such_bound" responses.(1));
  Alcotest.(check bool)
    "parse failure isolated (id -1)" true
    (has {|"id":-1|} responses.(2) && has {|"status":"error"|} responses.(2));
  Alcotest.(check bool) "sibling of failures ok" true
    (has {|"status":"ok"|} responses.(3))

let mixed_lines =
  [
    good_line 0;
    {|{"id":1,"kind":"power","tester":"and","ell":5,"eps":0.25,"k":16,"q":4,"trials":30,"seed":7}|};
    {|{"id":2,"kind":"critical","tester":"threshold","t":1,"ell":5,"eps":0.25,"k":16,"trials":30,"seed":7}|};
    {|{"id":3,"kind":"bound","name":"no_such_bound","params":{}}|};
  ]

let test_batch_cold_warm_byte_identity () =
  let cache = Memo.create ~capacity:64 () in
  let run () =
    Server.handle_batch ~cache ~stamp:"test-stamp" ~jobs:2
      (batch_of_lines mixed_lines)
  in
  let hits0 = counter "cache.hits" in
  let cold = run () in
  Alcotest.(check int) "cold pass has no hits" hits0 (counter "cache.hits");
  let warm = run () in
  Alcotest.(check (array string)) "warm replay is byte-identical" cold warm;
  (* The three ok answers replay from cache; the error recomputes. *)
  Alcotest.(check int) "warm pass hits = ok responses" (hits0 + 3)
    (counter "cache.hits");
  let errors_cached =
    Array.exists (fun r -> Astring.String.is_infix ~affix:"no_such_bound" r) warm
  in
  Alcotest.(check bool) "error response still present" true errors_cached

let test_batch_jobs_invariant () =
  let run jobs = Server.handle_batch ~jobs (batch_of_lines mixed_lines) in
  Alcotest.(check (array string)) "jobs=1 == jobs=4" (run 1) (run 4)

let test_batch_deadline_isolated () =
  (* An adversarially tight (but valid) deadline trips at the first
     engine check point inside the Monte-Carlo probes and must surface
     as an error response, not an exception. *)
  let deadline_s = 1e-6 in
  let responses =
    Server.handle_batch ~deadline_s ~jobs:2
      (batch_of_lines
         [
           {|{"id":0,"kind":"critical","tester":"and","ell":8,"eps":0.25,"k":16,"trials":4000,"adaptive":false,"seed":7}|};
         ])
  in
  Alcotest.(check bool)
    "over-budget query answers with a deadline error" true
    (Astring.String.is_infix ~affix:"deadline" responses.(0))

(* -- route_batch: the fleet's determinism contract ----------------------- *)

let test_route_batch_matches_single () =
  let reqs = batch_of_lines (mixed_lines @ [ "not json" ]) in
  let single = Server.handle_batch ~jobs:2 reqs in
  List.iter
    (fun shards ->
      Alcotest.(check (array string))
        (Printf.sprintf "shards=%d byte-identical to the single server"
           shards)
        single
        (Shard.route_batch ~jobs:2 ~shards reqs))
    [ 1; 2; 4 ]

let test_route_batch_shared_store_replay () =
  with_temp_dir @@ fun dir ->
  let caches shards =
    Array.init shards (fun _ ->
        Some (Memo.create ~capacity:64 ~dir:(Some dir) ()))
  in
  let reqs = batch_of_lines mixed_lines in
  let run shards =
    Shard.route_batch ~caches:(caches shards) ~stamp:"test-stamp" ~jobs:2
      ~shards reqs
  in
  let cold = run 3 in
  let hits0 = counter "cache.hits" in
  let warm = run 3 in
  Alcotest.(check (array string)) "warm fleet replay byte-identical" cold
    warm;
  Alcotest.(check bool) "warm replay drew on the shared store" true
    (counter "cache.hits" > hits0);
  (* The store is keyed on canonical bytes, not shard layout: any other
     shard count replays the same bytes from the same files. *)
  Alcotest.(check (array string)) "shards=1 replays the fleet's store" cold
    (run 1);
  Alcotest.(check (array string)) "shards=4 replays the fleet's store" cold
    (run 4)

let () =
  Alcotest.run "dut_service"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "defaults in canonical form" `Quick
            test_codec_defaults_spelled_out;
          Alcotest.test_case "malformed queries rejected" `Quick
            test_codec_errors;
          Alcotest.test_case "response id splice" `Quick
            test_response_line_splice;
        ] );
      ( "eval",
        [
          Alcotest.test_case "bounds match direct calls" `Quick
            test_bound_eval_matches_direct;
          Alcotest.test_case "bad bounds fail" `Quick test_bound_eval_failures;
        ] );
      ( "memo",
        [
          Alcotest.test_case "memory tier" `Quick test_memo_memory_tier;
          Alcotest.test_case "LRU eviction" `Quick test_memo_lru_eviction;
          Alcotest.test_case "disk persistence" `Quick
            test_memo_disk_persistence;
          Alcotest.test_case "corruption reads as miss" `Quick
            test_memo_corruption_is_a_miss;
          Alcotest.test_case "write-once: sequential loser" `Quick
            test_memo_write_once_sequential;
          Alcotest.test_case "write-once: concurrent processes" `Quick
            test_memo_write_once_concurrent;
        ] );
      (* The socket/fork suites stay ahead of anything touching the
         engine pool: forking after OCaml 5 domains exist is unsafe. *)
      ( "socket",
        [
          Alcotest.test_case "liveness probe" `Quick
            test_socket_liveness_probe;
          Alcotest.test_case "client timeout and duplicates" `Quick
            test_client_timeout_and_duplicates;
        ] );
      ( "ring",
        [
          Alcotest.test_case "range and determinism" `Quick
            test_ring_range_and_determinism;
          Alcotest.test_case "distribution" `Quick test_ring_distribution;
          Alcotest.test_case "growth stability" `Quick
            test_ring_growth_stability;
        ] );
      ( "batch",
        [
          Alcotest.test_case "failure isolation" `Quick
            test_batch_failure_isolation;
          Alcotest.test_case "cold/warm byte-identity" `Quick
            test_batch_cold_warm_byte_identity;
          Alcotest.test_case "jobs-invariance" `Quick test_batch_jobs_invariant;
          Alcotest.test_case "deadline isolation" `Quick
            test_batch_deadline_isolated;
        ] );
      ( "router",
        [
          Alcotest.test_case "route_batch == single server" `Quick
            test_route_batch_matches_single;
          Alcotest.test_case "shared-store replay across shard counts"
            `Quick test_route_batch_shared_store_replay;
        ] );
    ]
