(* Tests for dut_stats: summaries, confidence intervals, tail quantiles,
   the critical-parameter search, and power-law fitting. *)

open Dut_stats

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-3))

(* -- Summary ---------------------------------------------------------- *)

let test_summary_basics () =
  let s = Summary.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "mean" 3. s.mean;
  check_float "variance" 2.5 s.variance;
  check_float "min" 1. s.min;
  check_float "max" 5. s.max;
  Alcotest.(check int) "count" 5 s.count

let test_summary_single_point () =
  let s = Summary.of_array [| 7. |] in
  check_float "mean" 7. s.mean;
  check_float "variance 0" 0. s.variance

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty array")
    (fun () -> ignore (Summary.of_array [||]))

let test_quantile () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check_float "min" 1. (Summary.quantile a 0.);
  check_float "max" 4. (Summary.quantile a 1.);
  check_float "median" 2.5 (Summary.quantile a 0.5);
  check_float "interpolated" 1.75 (Summary.quantile a 0.25)

let test_quantile_unsorted_input () =
  check_float "sorts internally" 2.5 (Summary.quantile [| 4.; 1.; 3.; 2. |] 0.5)

let test_zscore () =
  check_float "standard" 2. (Summary.zscore ~null_mean:10. ~null_std:5. 20.);
  check_float "zero std equal" 0. (Summary.zscore ~null_mean:1. ~null_std:0. 1.);
  Alcotest.(check bool) "zero std above" true
    (Summary.zscore ~null_mean:1. ~null_std:0. 2. = infinity)

(* -- Binomial_ci ------------------------------------------------------ *)

let test_wilson_contains_estimate () =
  let ci = Binomial_ci.wilson95 ~successes:30 ~trials:100 in
  Alcotest.(check bool) "estimate inside" true
    (ci.lower <= ci.estimate && ci.estimate <= ci.upper);
  check_float "estimate" 0.3 ci.estimate

let test_wilson_extremes () =
  let all = Binomial_ci.wilson95 ~successes:50 ~trials:50 in
  Alcotest.(check bool) "upper at 1" true (all.upper <= 1.);
  Alcotest.(check bool) "lower below 1" true (all.lower < 1.);
  let none = Binomial_ci.wilson95 ~successes:0 ~trials:50 in
  Alcotest.(check bool) "lower at 0" true (none.lower >= 0.);
  Alcotest.(check bool) "upper above 0" true (none.upper > 0.)

let test_wilson_narrows_with_trials () =
  let small = Binomial_ci.wilson95 ~successes:5 ~trials:10 in
  let large = Binomial_ci.wilson95 ~successes:500 ~trials:1000 in
  Alcotest.(check bool) "narrower" true
    (large.upper -. large.lower < small.upper -. small.lower)

let test_wilson_errors () =
  Alcotest.check_raises "trials" (Invalid_argument "Binomial_ci.wilson: trials <= 0")
    (fun () -> ignore (Binomial_ci.wilson95 ~successes:0 ~trials:0));
  Alcotest.check_raises "counts"
    (Invalid_argument "Binomial_ci.wilson: inconsistent counts") (fun () ->
      ignore (Binomial_ci.wilson95 ~successes:5 ~trials:3))

let test_bound_helpers () =
  Alcotest.(check bool) "clears" true
    (Binomial_ci.lower_bound_clears ~successes:95 ~trials:100 ~threshold:0.8);
  Alcotest.(check bool) "does not clear" false
    (Binomial_ci.lower_bound_clears ~successes:70 ~trials:100 ~threshold:0.8);
  Alcotest.(check bool) "below" true
    (Binomial_ci.upper_bound_below ~successes:5 ~trials:100 ~threshold:0.2)

(* -- Montecarlo ------------------------------------------------------- *)

let test_estimate_prob () =
  let rng = Dut_prng.Rng.create 80 in
  let ci =
    Montecarlo.estimate_prob ~trials:2000 rng (fun r ->
        Dut_prng.Rng.unit_float r < 0.4)
  in
  Alcotest.(check bool) "near 0.4" true (Float.abs (ci.estimate -. 0.4) < 0.05)

let test_estimate_mean () =
  let rng = Dut_prng.Rng.create 81 in
  let s = Montecarlo.estimate_mean ~trials:2000 rng Dut_prng.Rng.unit_float in
  Alcotest.(check bool) "near 0.5" true (Float.abs (s.mean -. 0.5) < 0.05)

(* -- Critical --------------------------------------------------------- *)

let test_critical_exact () =
  List.iter
    (fun target ->
      match Critical.search ~lo:1 ~hi:10000 (fun v -> v >= target) with
      | Some v -> Alcotest.(check int) "finds the threshold" target v
      | None -> Alcotest.fail "not found")
    [ 1; 2; 3; 17; 100; 1024; 9999; 10000 ]

let test_critical_not_found () =
  Alcotest.(check (option int)) "unsatisfiable" None
    (Critical.search ~lo:1 ~hi:100 (fun _ -> false))

let test_critical_always_true () =
  Alcotest.(check (option int)) "lo immediately" (Some 3)
    (Critical.search ~lo:3 ~hi:100 (fun _ -> true))

let test_critical_bad_bounds () =
  Alcotest.check_raises "bad bounds" (Invalid_argument "Critical.search: bad bounds")
    (fun () -> ignore (Critical.search ~lo:5 ~hi:4 (fun _ -> true)))

let test_critical_call_count () =
  (* Logarithmically many probes: target 1000 in [1, 2^20] should need
     well under 60 evaluations. *)
  let calls = ref 0 in
  let ok v =
    incr calls;
    v >= 1000
  in
  ignore (Critical.search ~lo:1 ~hi:(1 lsl 20) ok);
  Alcotest.(check bool) "few calls" true (!calls < 60)

let prop_critical_finds_threshold =
  QCheck.Test.make ~name:"critical search = threshold for monotone predicates"
    ~count:300
    QCheck.(int_range 1 5000)
    (fun target ->
      Critical.search ~lo:1 ~hi:5000 (fun v -> v >= target) = Some target)

(* -- Fit -------------------------------------------------------------- *)

let test_linear_exact () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (2. *. float_of_int i) +. 1.)) in
  let f = Fit.linear pts in
  check_float "slope" 2. f.slope;
  check_float "intercept" 1. f.intercept;
  check_float "r2" 1. f.r2

let test_log_log_exact () =
  let pts = Array.init 8 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 3. *. (x ** -0.5)))
  in
  let f = Fit.log_log pts in
  check_float_loose "recovers the exponent" (-0.5) f.slope;
  check_float_loose "recovers the constant" (log 3.) f.intercept

let test_fit_errors () =
  Alcotest.check_raises "too few" (Invalid_argument "Fit.linear: need at least 2 points")
    (fun () -> ignore (Fit.linear [| (1., 1.) |]));
  Alcotest.check_raises "zero variance" (Invalid_argument "Fit.linear: zero x-variance")
    (fun () -> ignore (Fit.linear [| (1., 1.); (1., 2.) |]));
  Alcotest.check_raises "log-log positivity"
    (Invalid_argument "Fit.log_log: coordinates must be positive") (fun () ->
      ignore (Fit.log_log [| (1., 1.); (-1., 2.) |]))

(* -- Bootstrap ---------------------------------------------------------- *)

let test_bootstrap_exact_power_law () =
  (* Noise-free power law: the interval collapses onto the true slope. *)
  let rng = Dut_prng.Rng.create 82 in
  let pts = Array.init 8 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 5. *. (x ** -0.5)))
  in
  let ci = Bootstrap.exponent_ci rng pts in
  Alcotest.(check (float 1e-6)) "estimate" (-0.5) ci.estimate;
  Alcotest.(check bool) "tight interval" true
    (ci.upper -. ci.lower < 1e-6)

let test_bootstrap_noisy_power_law_covers () =
  let rng = Dut_prng.Rng.create 83 in
  let pts = Array.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      let noise = 1. +. (0.2 *. (Dut_prng.Rng.unit_float rng -. 0.5)) in
      (x, 3. *. (x ** -1.) *. noise))
  in
  let ci = Bootstrap.exponent_ci rng pts in
  Alcotest.(check bool) "interval brackets estimate" true
    (ci.lower <= ci.estimate && ci.estimate <= ci.upper);
  Alcotest.(check bool) "interval near the truth" true
    (ci.lower < -0.7 && ci.upper > -1.3)

let test_bootstrap_mean_ci () =
  let rng = Dut_prng.Rng.create 84 in
  let values = Array.init 200 (fun _ -> Dut_prng.Rng.unit_float rng) in
  let ci = Bootstrap.mean_ci rng values in
  Alcotest.(check bool) "covers 1/2" true (ci.lower < 0.5 && ci.upper > 0.5);
  Alcotest.(check bool) "narrow for 200 points" true (ci.upper -. ci.lower < 0.1)

let test_bootstrap_errors () =
  let rng = Dut_prng.Rng.create 85 in
  Alcotest.check_raises "few points"
    (Invalid_argument "Bootstrap.exponent_ci: need at least 3 points") (fun () ->
      ignore (Bootstrap.exponent_ci rng [| (1., 1.); (2., 2.) |]));
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Bootstrap.mean_ci: empty sample") (fun () ->
      ignore (Bootstrap.mean_ci rng [||]))

(* -- Tail ------------------------------------------------------------- *)

let test_poisson_sf_known () =
  (* P[Poisson(1) >= 1] = 1 - e^-1. *)
  check_float_loose "lambda 1" (1. -. exp (-1.)) (Tail.poisson_sf ~lambda:1. 1);
  check_float "c <= 0" 1. (Tail.poisson_sf ~lambda:5. 0);
  check_float "lambda 0" 0. (Tail.poisson_sf ~lambda:0. 3)

let test_poisson_sf_monotone () =
  let prev = ref 1.1 in
  for c = 0 to 20 do
    let sf = Tail.poisson_sf ~lambda:4. c in
    if sf > !prev +. 1e-12 then Alcotest.fail "sf must decrease";
    prev := sf
  done

let test_poisson_isf () =
  let c = Tail.poisson_isf ~lambda:2. ~p:0.05 in
  Alcotest.(check bool) "cutoff achieves the level" true
    (Tail.poisson_sf ~lambda:2. c <= 0.05);
  Alcotest.(check bool) "cutoff is minimal" true
    (c = 0 || Tail.poisson_sf ~lambda:2. (c - 1) > 0.05)

let test_normal_cdf_known () =
  check_float_loose "Phi(0)" 0.5 (Tail.normal_cdf 0.);
  check_float_loose "Phi(1.96)" 0.975 (Tail.normal_cdf 1.96);
  check_float_loose "Phi(-1.96)" 0.025 (Tail.normal_cdf (-1.96))

let test_normal_isf_inverse () =
  List.iter
    (fun p -> check_float_loose "sf(isf(p)) = p" p (Tail.normal_sf (Tail.normal_isf p)))
    [ 0.5; 0.1; 0.05; 0.01; 0.001 ]

let test_binomial_sf_brute () =
  (* Exact match against direct pmf summation for small k. *)
  let k = 12 and p = 0.3 in
  let binom n r =
    let rec go acc i =
      if i > r then acc
      else go (acc *. float_of_int (n - i + 1) /. float_of_int i) (i + 1)
    in
    go 1. 1
  in
  for t = 0 to k + 1 do
    let brute = ref 0. in
    for i = max t 0 to k do
      brute :=
        !brute
        +. binom k i *. (p ** float_of_int i)
           *. ((1. -. p) ** float_of_int (k - i))
    done;
    check_float_loose (Printf.sprintf "t=%d" t) (Float.min 1. !brute)
      (Tail.binomial_sf ~k ~p t)
  done

let test_binomial_sf_extremes () =
  check_float "p=0" 0. (Tail.binomial_sf ~k:10 ~p:0. 1);
  check_float "p=1" 1. (Tail.binomial_sf ~k:10 ~p:1. 10);
  check_float "t=0" 1. (Tail.binomial_sf ~k:10 ~p:0.5 0);
  check_float "t>k" 0. (Tail.binomial_sf ~k:10 ~p:0.5 11)

let test_binomial_sf_large_k_no_underflow () =
  (* The k=1024, p=0.5 median tail must be ~0.5, not garbage. *)
  let sf = Tail.binomial_sf ~k:1024 ~p:0.5 512 in
  Alcotest.(check bool) "median tail" true (Float.abs (sf -. 0.5) < 0.05)

let test_binomial_max_p () =
  let k = 32 and t = 4 in
  let p = Tail.binomial_max_p ~k ~t ~level:0.25 in
  Alcotest.(check bool) "achieves level" true
    (Tail.binomial_sf ~k ~p t <= 0.25 +. 1e-6);
  Alcotest.(check bool) "near-maximal" true
    (Tail.binomial_sf ~k ~p:(p +. 0.01) t > 0.25)

let test_binomial_max_p_t1 () =
  (* For t=1: largest p with 1-(1-p)^k <= level, i.e. p = 1-(1-level)^(1/k). *)
  let k = 16 in
  let expected = 1. -. ((1. -. 0.25) ** (1. /. 16.)) in
  check_float_loose "closed form" expected
    (Tail.binomial_max_p ~k ~t:1 ~level:0.25)

let test_count_cutoff_levels () =
  (* The returned cutoff must push the Poisson tail under the level. *)
  List.iter
    (fun (mean, p) ->
      let c = Tail.count_cutoff ~mean ~p in
      if mean <= 50. then
        Alcotest.(check bool) "tail below level" true
          (Tail.poisson_sf ~lambda:mean c <= p))
    [ (0.5, 0.1); (2., 0.01); (10., 0.001); (40., 0.05) ]

let () =
  Alcotest.run "dut_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary_basics;
          Alcotest.test_case "single point" `Quick test_summary_single_point;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "quantile unsorted" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "zscore" `Quick test_zscore;
        ] );
      ( "binomial_ci",
        [
          Alcotest.test_case "contains estimate" `Quick test_wilson_contains_estimate;
          Alcotest.test_case "extremes" `Quick test_wilson_extremes;
          Alcotest.test_case "narrows" `Quick test_wilson_narrows_with_trials;
          Alcotest.test_case "errors" `Quick test_wilson_errors;
          Alcotest.test_case "bound helpers" `Quick test_bound_helpers;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "estimate prob" `Quick test_estimate_prob;
          Alcotest.test_case "estimate mean" `Quick test_estimate_mean;
        ] );
      ( "critical",
        [
          Alcotest.test_case "exact thresholds" `Quick test_critical_exact;
          Alcotest.test_case "not found" `Quick test_critical_not_found;
          Alcotest.test_case "always true" `Quick test_critical_always_true;
          Alcotest.test_case "bad bounds" `Quick test_critical_bad_bounds;
          Alcotest.test_case "call count" `Quick test_critical_call_count;
        ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "log-log exact" `Quick test_log_log_exact;
          Alcotest.test_case "errors" `Quick test_fit_errors;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "exact power law" `Quick test_bootstrap_exact_power_law;
          Alcotest.test_case "noisy power law" `Quick test_bootstrap_noisy_power_law_covers;
          Alcotest.test_case "mean ci" `Quick test_bootstrap_mean_ci;
          Alcotest.test_case "errors" `Quick test_bootstrap_errors;
        ] );
      ( "tail",
        [
          Alcotest.test_case "poisson sf known" `Quick test_poisson_sf_known;
          Alcotest.test_case "poisson sf monotone" `Quick test_poisson_sf_monotone;
          Alcotest.test_case "poisson isf" `Quick test_poisson_isf;
          Alcotest.test_case "normal cdf known" `Quick test_normal_cdf_known;
          Alcotest.test_case "normal isf inverse" `Quick test_normal_isf_inverse;
          Alcotest.test_case "binomial sf brute" `Quick test_binomial_sf_brute;
          Alcotest.test_case "binomial sf extremes" `Quick test_binomial_sf_extremes;
          Alcotest.test_case "binomial large k" `Quick test_binomial_sf_large_k_no_underflow;
          Alcotest.test_case "binomial max p" `Quick test_binomial_max_p;
          Alcotest.test_case "binomial max p t=1" `Quick test_binomial_max_p_t1;
          Alcotest.test_case "count cutoff levels" `Quick test_count_cutoff_levels;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_critical_finds_threshold ] );
    ]
