(* Tests for Dut_stream and the engine's incremental fold: sketch merge
   laws (exact associativity/commutativity — the property parallel
   chunking and player merging rely on), measured memory accounting,
   byte-identical verdict streams across jobs counts, sliding/growing
   agreement on stationary streams, the anytime-final == batch-verdict
   contract on exact sketches, and fold_chunks determinism plus its
   per-chunk deadline granularity. *)

module Sketch = Dut_stream.Sketch
module Ingest = Dut_stream.Ingest
module Anytime = Dut_stream.Anytime
module Parallel = Dut_engine.Parallel
module Rng = Dut_prng.Rng

let feed_all sk xs = Array.iter (Sketch.add sk) xs

let sketch_of cfg xs =
  let sk = Sketch.create cfg in
  feed_all sk xs;
  sk

(* -- qcheck generators --------------------------------------------------- *)

let config_gen =
  QCheck.Gen.(
    let* n = int_range 2 128 in
    let* kind = oneofl [ Sketch.Hist; Sketch.Ams ] in
    let* budget = int_range (Sketch.header_words + 1) (n + Sketch.header_words)
    in
    let* seed = int_range 0 1000 in
    return (Sketch.config ~kind ~n ~budget_words:budget ~seed, n, budget))

let stream_gen n = QCheck.Gen.(array_size (int_range 0 200) (int_range 0 (n - 1)))

let merge_input =
  QCheck.make
    QCheck.Gen.(
      let* cfg, n, budget = config_gen in
      let* a = stream_gen n in
      let* b = stream_gen n in
      let* c = stream_gen n in
      return (cfg, budget, a, b, c))
    ~print:(fun (cfg, budget, a, b, c) ->
      Printf.sprintf "kind=%s n=%d budget=%d |a|=%d |b|=%d |c|=%d"
        (Sketch.kind_to_string (Sketch.kind_of cfg))
        (Sketch.universe cfg) budget (Array.length a) (Array.length b)
        (Array.length c))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:200 merge_input
    (fun (cfg, _, a, b, _) ->
      let sa = sketch_of cfg a and sb = sketch_of cfg b in
      Sketch.equal (Sketch.merge sa sb) (Sketch.merge sb sa))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:200 merge_input
    (fun (cfg, _, a, b, c) ->
      let sa = sketch_of cfg a and sb = sketch_of cfg b and sc = sketch_of cfg c in
      let left = Sketch.merge (Sketch.merge sa sb) sc in
      let right = Sketch.merge sa (Sketch.merge sb sc) in
      Sketch.equal left right
      && String.equal (Sketch.fingerprint left) (Sketch.fingerprint right))

let prop_merge_is_concat =
  QCheck.Test.make ~name:"merge = sketch of concatenated stream" ~count:200
    merge_input (fun (cfg, _, a, b, _) ->
      let merged = Sketch.merge (sketch_of cfg a) (sketch_of cfg b) in
      Sketch.equal merged (sketch_of cfg (Array.append a b)))

let prop_words_within_budget =
  QCheck.Test.make ~name:"words_used never exceeds budget" ~count:200
    merge_input (fun (cfg, budget, a, b, _) ->
      let sa = sketch_of cfg a and sb = sketch_of cfg b in
      Sketch.words_used sa <= budget
      && Sketch.words_used (Sketch.merge sa sb) <= budget)

(* -- config edges -------------------------------------------------------- *)

let test_config_validation () =
  (match
     Sketch.config ~kind:Sketch.Hist ~n:8 ~budget_words:Sketch.header_words
       ~seed:1
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "budget <= header accepted");
  (match Sketch.config ~kind:Sketch.Ams ~n:0 ~budget_words:64 ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted");
  let exact =
    Sketch.config ~kind:Sketch.Hist ~n:16 ~budget_words:(Sketch.exact_budget ~n:16)
      ~seed:1
  in
  Alcotest.(check bool) "exact at exact_budget" true (Sketch.is_exact exact);
  (* Extra budget beyond the domain buys nothing for a histogram. *)
  let over =
    Sketch.config ~kind:Sketch.Hist ~n:16 ~budget_words:500 ~seed:1
  in
  Alcotest.(check int) "buckets capped at n" 16 (Sketch.buckets over);
  let hashed = Sketch.config ~kind:Sketch.Hist ~n:64 ~budget_words:24 ~seed:1 in
  Alcotest.(check bool) "hashed not exact" false (Sketch.is_exact hashed);
  (* Differently-configured sketches must not merge. *)
  let other = Sketch.config ~kind:Sketch.Hist ~n:64 ~budget_words:24 ~seed:2 in
  match Sketch.merge (Sketch.create hashed) (Sketch.create other) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cross-config merge accepted"

let test_excess_centering () =
  (* The centered statistic has exactly zero null mean; spot-check that
     it is small (in null-sd units) on actual uniform streams for every
     kind, and large on a constant stream. *)
  let rng = Rng.create 7 in
  List.iter
    (fun (kind, budget) ->
      let cfg = Sketch.config ~kind ~n:64 ~budget_words:budget ~seed:5 in
      let sk = Sketch.create cfg in
      for _ = 1 to 4096 do
        Sketch.add sk (Rng.int rng 64)
      done;
      let z = Sketch.excess sk /. Sketch.null_sd sk in
      if Float.abs z > 6. then
        Alcotest.failf "%s budget %d: uniform excess %.1f null-sds off"
          (Sketch.kind_to_string kind) budget z;
      let const = Sketch.create cfg in
      for _ = 1 to 4096 do
        Sketch.add const 3
      done;
      Alcotest.(check bool)
        (Sketch.kind_to_string kind ^ " rejects constant stream")
        false
        (Sketch.accepts const ~eps:0.3))
    [ (Sketch.Hist, Sketch.exact_budget ~n:64); (Sketch.Hist, 24); (Sketch.Ams, 24) ]

(* -- ingest -------------------------------------------------------------- *)

let test_ingest_chunking () =
  let cfg = Sketch.config ~kind:Sketch.Hist ~n:32 ~budget_words:24 ~seed:3 in
  let emitted = ref [] in
  let ing =
    Ingest.create ~jobs:1 ~chunk:16
      ~on_chunk:(fun sk -> emitted := sk :: !emitted)
      cfg
  in
  let rng = Rng.create 11 in
  let xs = Array.init 100 (fun _ -> Rng.int rng 32) in
  Array.iter (Ingest.feed ing) xs;
  Ingest.flush ing;
  Ingest.flush ing (* idempotent *);
  let emitted = List.rev !emitted in
  Alcotest.(check int) "samples_fed" 100 (Ingest.samples_fed ing);
  Alcotest.(check int) "chunks: 6 full + 1 partial" 7 (List.length emitted);
  Alcotest.(check (list int)) "chunk sizes"
    [ 16; 16; 16; 16; 16; 16; 4 ]
    (List.map Sketch.count emitted);
  (* The emitted sketches reassemble the whole stream exactly. *)
  let cum =
    List.fold_left Sketch.merge (Sketch.create cfg) emitted
  in
  Alcotest.(check string) "reassembles the stream"
    (Sketch.fingerprint (sketch_of cfg xs))
    (Sketch.fingerprint cum);
  (* Feeding after a partial-chunk flush would misalign boundaries. *)
  match Ingest.feed ing 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "feed after partial flush accepted"

let verdicts_with ~jobs xs =
  let cfg = Sketch.config ~kind:Sketch.Hist ~n:64 ~budget_words:40 ~seed:9 in
  let referee = Anytime.create ~window:(Anytime.Sliding 3) ~eps:0.3 cfg in
  let ing =
    Ingest.create ~jobs ~chunk:64
      ~on_chunk:(fun sk -> ignore (Anytime.observe referee sk))
      cfg
  in
  Array.iter (Ingest.feed ing) xs;
  Ingest.flush ing;
  (Anytime.verdicts referee, Sketch.fingerprint (Anytime.cumulative referee))

let test_verdicts_jobs_invariant () =
  let rng = Rng.create 13 in
  let xs = Array.init 2000 (fun _ -> Rng.int rng 64) in
  let v1, f1 = verdicts_with ~jobs:1 xs in
  let v4, f4 = verdicts_with ~jobs:4 xs in
  Alcotest.(check string) "cumulative sketch bit-identical" f1 f4;
  Alcotest.(check bool) "verdict stream identical" true (v1 = v4);
  Alcotest.(check int) "checkpoints emitted" ((2000 + 63) / 64) (List.length v1)

(* -- anytime ------------------------------------------------------------- *)

let test_sliding_growing_agree_stationary () =
  let n = 64 in
  let cfg =
    Sketch.config ~kind:Sketch.Hist ~n ~budget_words:(Sketch.exact_budget ~n)
      ~seed:21
  in
  let run source_rng source =
    let grow = Anytime.create ~window:Anytime.Growing ~eps:0.3 cfg in
    let slide = Anytime.create ~window:(Anytime.Sliding 3) ~eps:0.3 cfg in
    for _ = 1 to 6 do
      let sk = Sketch.create cfg in
      for _ = 1 to 2048 do
        Sketch.add sk (source source_rng)
      done;
      ignore (Anytime.observe grow sk);
      ignore (Anytime.observe slide sk)
    done;
    (Anytime.rejected grow, Anytime.rejected slide)
  in
  (* Stationary uniform: neither window ever stops (anytime validity). *)
  let g, s = run (Rng.create 31) (fun rng -> Rng.int rng n) in
  Alcotest.(check bool) "uniform: growing never stops" true (g = None);
  Alcotest.(check bool) "uniform: sliding never stops" true (s = None);
  (* Stationary far (constant stream): both stop, at the same checkpoint. *)
  let g, s = run (Rng.create 32) (fun _ -> 5) in
  (match (g, s) with
  | Some gv, Some sv ->
      Alcotest.(check int) "same stopping checkpoint" gv.Anytime.index
        sv.Anytime.index
  | _ -> Alcotest.fail "constant stream not rejected by both windows")

let test_anytime_matches_batch () =
  (* On a fully-consumed stream with an exact sketch, the referee's
     final verdict IS the batch collision tester's — across uniform,
     hard-family and constant streams, any chunking. *)
  let rng = Rng.create 41 in
  let cases = ref 0 in
  for trial = 1 to 60 do
    let ell = 2 + (trial mod 4) in
    let n = 1 lsl (ell + 1) in
    let eps = 0.25 +. (0.05 *. float_of_int (trial mod 3)) in
    let q = 50 + (97 * trial mod 400) in
    let source =
      match trial mod 3 with
      | 0 -> fun rng -> Rng.int rng n
      | 1 ->
          let hard = Dut_dist.Paninski.random ~ell ~eps rng in
          Dut_protocol.Network.of_paninski hard
      | _ -> fun _ -> trial mod n
    in
    let src_rng = Rng.create (1000 + trial) in
    let xs = Array.init q (fun _ -> source src_rng) in
    let cfg =
      Sketch.config ~kind:Sketch.Hist ~n ~budget_words:(Sketch.exact_budget ~n)
        ~seed:trial
    in
    let referee = Anytime.create ~eps cfg in
    let ing =
      Ingest.create ~jobs:1 ~chunk:(7 + (trial mod 50))
        ~on_chunk:(fun sk -> ignore (Anytime.observe referee sk))
        cfg
    in
    Array.iter (Ingest.feed ing) xs;
    Ingest.flush ing;
    let final = Anytime.final referee in
    let batch_accepts = Dut_testers.Collision.test ~n ~eps xs in
    if final.Anytime.reject = batch_accepts then
      Alcotest.failf
        "trial %d (n=%d eps=%.2f q=%d): final reject=%b but batch accept=%b"
        trial n eps q final.Anytime.reject batch_accepts;
    incr cases
  done;
  Alcotest.(check int) "all cases compared" 60 !cases

(* -- fold_chunks --------------------------------------------------------- *)

let test_fold_chunks_deterministic () =
  (* Per-chunk RNG pre-splitting and index-ordered merging: the fold is
     bit-identical for every jobs count, including RNG-dependent chunk
     results and a non-commutative merge. *)
  let run ~jobs =
    Parallel.fold_chunks ~jobs ~rng:(Rng.create 2019) ~n:1000 ~chunk:64
      ~f:(fun rng ~lo ~hi ->
        let acc = ref 0 in
        for i = lo to hi - 1 do
          acc := !acc + (i * Rng.int rng 1000)
        done;
        [ !acc ])
      ~init:[] ~merge:(fun acc part -> acc @ part)
  in
  let a = run ~jobs:1 and b = run ~jobs:4 in
  Alcotest.(check (list int)) "jobs 1 = jobs 4" a b;
  Alcotest.(check int) "one part per chunk" ((1000 + 63) / 64) (List.length a)

let test_fold_chunks_edges () =
  let const_f _ ~lo ~hi = hi - lo in
  let total ~n ~chunk =
    Parallel.fold_chunks ~jobs:2 ~rng:(Rng.create 1) ~n ~chunk ~f:const_f
      ~init:0 ~merge:( + )
  in
  Alcotest.(check int) "empty fold" 0 (total ~n:0 ~chunk:8);
  Alcotest.(check int) "single short chunk" 5 (total ~n:5 ~chunk:8);
  Alcotest.(check int) "exact multiple" 64 (total ~n:64 ~chunk:8);
  (match total ~n:(-1) ~chunk:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n < 0 accepted");
  match total ~n:8 ~chunk:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk < 1 accepted"

let test_fold_chunks_deadline_per_chunk () =
  (* The sequential fallback checks the deadline once per chunk — the
     same granularity as the pooled path — so an expiry mid-stream
     cancels at the next chunk boundary: completed chunks are whole,
     later chunks never start. *)
  let elements = ref [] in
  let spin_past () =
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 2e-3 do
      ()
    done
  in
  Alcotest.check_raises "expiry noticed at a chunk boundary"
    Dut_engine.Deadline.Exceeded (fun () ->
      Dut_engine.Deadline.with_timeout ~seconds:1e-3 (fun () ->
          ignore
            (Parallel.fold_chunks ~jobs:1 ~rng:(Rng.create 1) ~n:9 ~chunk:3
               ~f:(fun _ ~lo ~hi ->
                 for i = lo to hi - 1 do
                   elements := i :: !elements
                 done;
                 if lo = 3 then spin_past ();
                 0)
               ~init:0 ~merge:( + ))));
  Alcotest.(check (list int)) "whole chunks only, none after expiry"
    [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare !elements)

let () =
  Alcotest.run "dut_stream"
    [
      ( "sketch laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_commutative; prop_merge_associative;
            prop_merge_is_concat; prop_words_within_budget;
          ] );
      ( "sketch",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "excess centering" `Quick test_excess_centering;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "chunking and flush" `Quick test_ingest_chunking;
          Alcotest.test_case "verdicts jobs-invariant" `Quick
            test_verdicts_jobs_invariant;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "sliding/growing agree on stationary" `Quick
            test_sliding_growing_agree_stationary;
          Alcotest.test_case "final matches batch tester" `Quick
            test_anytime_matches_batch;
        ] );
      ( "fold_chunks",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_fold_chunks_deterministic;
          Alcotest.test_case "edge cases" `Quick test_fold_chunks_edges;
          Alcotest.test_case "deadline per chunk" `Quick
            test_fold_chunks_deadline_per_chunk;
        ] );
    ]
