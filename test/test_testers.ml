(* Tests for dut_testers: statistics on crafted inputs, cutoff algebra,
   and end-to-end power of each centralized tester on the hard family. *)

let check_float = Alcotest.(check (float 1e-9))

(* -- Collision -------------------------------------------------------- *)

let test_collision_statistic () =
  Alcotest.(check int) "no collisions" 0
    (Dut_testers.Collision.statistic [| 0; 1; 2; 3 |] ~n:4);
  Alcotest.(check int) "one pair" 1
    (Dut_testers.Collision.statistic [| 0; 1; 0; 3 |] ~n:4);
  (* 3 equal values = C(3,2) = 3 pairs. *)
  Alcotest.(check int) "triple" 3
    (Dut_testers.Collision.statistic [| 2; 2; 2 |] ~n:4);
  Alcotest.(check int) "empty" 0 (Dut_testers.Collision.statistic [||] ~n:4)

let test_collision_expectations () =
  check_float "uniform mean" (45. /. 100.)
    (Dut_testers.Collision.expected_uniform ~n:100 ~m:10);
  check_float "far mean"
    (45. *. 1.09 /. 100.)
    (Dut_testers.Collision.expected_far ~n:100 ~m:10 ~eps:0.3);
  Alcotest.(check bool) "cutoff between" true
    (Dut_testers.Collision.cutoff ~n:100 ~m:10 ~eps:0.3
     > Dut_testers.Collision.expected_uniform ~n:100 ~m:10
    && Dut_testers.Collision.cutoff ~n:100 ~m:10 ~eps:0.3
       < Dut_testers.Collision.expected_far ~n:100 ~m:10 ~eps:0.3)

let power_check ?(ell = 5) name test_fn recommended =
  (* Generic end-to-end power check for a centralized tester at its
     recommended sample count. *)
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let m = recommended ~n ~eps in
  let rng = Dut_prng.Rng.create 90 in
  let trials = 120 in
  let ok_unif = ref 0 and ok_far = ref 0 in
  for _ = 1 to trials do
    let r = Dut_prng.Rng.split rng in
    let unif = Array.init m (fun _ -> Dut_prng.Rng.int r n) in
    if test_fn ~n ~eps unif then incr ok_unif;
    let d = Dut_dist.Paninski.random ~ell ~eps r in
    if not (test_fn ~n ~eps (Dut_dist.Paninski.draw_many d r m)) then incr ok_far
  done;
  let fu = float_of_int !ok_unif /. float_of_int trials in
  let ff = float_of_int !ok_far /. float_of_int trials in
  if fu < 0.7 then Alcotest.failf "%s: uniform acceptance too low (%.2f)" name fu;
  if ff < 0.7 then Alcotest.failf "%s: far rejection too low (%.2f)" name ff

let test_collision_power () =
  power_check "collision" Dut_testers.Collision.test
    Dut_testers.Collision.recommended_samples

let test_collision_accepts_uniform_small () =
  (* Deterministic: all-distinct samples always accept. *)
  Alcotest.(check bool) "distinct accept" true
    (Dut_testers.Collision.test ~n:100 ~eps:0.3 (Array.init 10 Fun.id))

(* -- Unique ----------------------------------------------------------- *)

let test_unique_statistic () =
  Alcotest.(check int) "all distinct" 4
    (Dut_testers.Unique.statistic [| 0; 1; 2; 3 |] ~n:8);
  Alcotest.(check int) "one repeated" 3
    (Dut_testers.Unique.statistic [| 0; 0; 2; 3 |] ~n:8);
  Alcotest.(check int) "all same" 1
    (Dut_testers.Unique.statistic [| 5; 5; 5 |] ~n:8)

let test_unique_expectations_ordering () =
  (* Far distributions produce fewer distinct values, at every sample
     size (concavity). *)
  List.iter
    (fun (n, m) ->
      Alcotest.(check bool) "uniform > far" true
        (Dut_testers.Unique.expected_uniform ~n ~m
        > Dut_testers.Unique.expected_far ~n ~m ~eps:0.4))
    [ (64, 40); (64, 500); (1024, 100); (1024, 10000) ]

let test_unique_power () =
  (* The coincidence tester needs the near-sparse regime sqrt(n)/eps^2
     < n, hence the larger universe. *)
  power_check ~ell:12 "unique" Dut_testers.Unique.test
    Dut_testers.Unique.recommended_samples

(* -- Chi_square ------------------------------------------------------- *)

let test_chi2_statistic_uniform_counts () =
  (* Perfectly balanced counts give statistic 0. *)
  check_float "balanced" 0.
    (Dut_testers.Chi_square.statistic [| 0; 1; 2; 3 |] ~n:4)

let test_chi2_statistic_concentrated () =
  (* All m samples on one of n elements: (m - m/n)^2/(m/n) + (n-1)(m/n). *)
  let m = 8 and n = 4 in
  let e = float_of_int m /. float_of_int n in
  let expected = (((8. -. e) ** 2.) /. e) +. (3. *. e) in
  check_float "concentrated" expected
    (Dut_testers.Chi_square.statistic (Array.make m 0) ~n)

let test_chi2_null_mean () =
  check_float "n-1" 63. (Dut_testers.Chi_square.expected_uniform ~n:64 ~m:100)

let test_chi2_power () =
  power_check "chi2" Dut_testers.Chi_square.test
    Dut_testers.Chi_square.recommended_samples

(* -- Plugin_l1 -------------------------------------------------------- *)

let test_plugin_statistic () =
  (* Empirical [1/2, 1/2] vs uniform on 2: distance 0. *)
  check_float "balanced" 0. (Dut_testers.Plugin_l1.statistic [| 0; 1 |] ~n:2);
  (* All mass on one of two: |1 - 1/2| + |0 - 1/2| = 1. *)
  check_float "concentrated" 1. (Dut_testers.Plugin_l1.statistic [| 0; 0 |] ~n:2)

let test_plugin_power () =
  power_check "plugin-l1" Dut_testers.Plugin_l1.test
    Dut_testers.Plugin_l1.recommended_samples

let test_plugin_needs_more_samples_than_collision () =
  Alcotest.(check bool) "learning costs more" true
    (Dut_testers.Plugin_l1.recommended_samples ~n:4096 ~eps:0.25
    > 4 * Dut_testers.Collision.recommended_samples ~n:4096 ~eps:0.25)

(* -- Poissonized -------------------------------------------------------- *)

let test_poissonized_statistic () =
  Alcotest.(check int) "counts to pairs" 4
    (Dut_testers.Poissonized.collision_statistic [| 2; 3; 0; 1 |])

let test_poissonized_counts_total () =
  (* Total count concentrates around m. *)
  let rng = Dut_prng.Rng.create 95 in
  let pmf = Dut_dist.Pmf.uniform 64 in
  let m = 2000 in
  let counts = Dut_testers.Poissonized.draw_counts rng ~pmf ~mean_samples:m in
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "total near m" true (abs (total - m) < 300)

let test_poissonized_expectations () =
  check_float "null mean" 50. (Dut_testers.Poissonized.expected_uniform ~n:100 ~m:100);
  Alcotest.(check bool) "far above null" true
    (Dut_testers.Poissonized.expected_far ~n:100 ~m:100 ~eps:0.3
    > Dut_testers.Poissonized.expected_uniform ~n:100 ~m:100)

let test_poissonized_power_matches_fixed_m () =
  (* The Poissonized collision tester works like the fixed-m one, once m
     also clears the Poissonization floor ~1/eps^4 (the random total
     adds m^1.5/n of statistic noise, so the m^2 eps^2/n gap needs
     sqrt(m) >= ~1/eps^2 — the classical sqrt(n)/eps^2 vs 1/eps^4
     crossover). *)
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let m =
    max
      (Dut_testers.Collision.recommended_samples ~n ~eps)
      (int_of_float (12. /. (eps ** 4.)))
  in
  let rng = Dut_prng.Rng.create 96 in
  let trials = 120 in
  let ok_unif = ref 0 and ok_far = ref 0 in
  let uniform_pmf = Dut_dist.Pmf.uniform n in
  for _ = 1 to trials do
    let r = Dut_prng.Rng.split rng in
    if Dut_testers.Poissonized.test ~n ~eps ~m r uniform_pmf then incr ok_unif;
    let d = Dut_dist.Paninski.random ~ell ~eps r in
    if not (Dut_testers.Poissonized.test ~n ~eps ~m r (Dut_dist.Paninski.pmf d))
    then incr ok_far
  done;
  if float_of_int !ok_unif /. float_of_int trials < 0.7 then
    Alcotest.failf "poissonized uniform acceptance too low (%d/%d)" !ok_unif trials;
  if float_of_int !ok_far /. float_of_int trials < 0.7 then
    Alcotest.failf "poissonized far rejection too low (%d/%d)" !ok_far trials

(* -- Cross-tester sanity ----------------------------------------------- *)

let test_recommended_samples_scale_with_n () =
  List.iter
    (fun recommended ->
      Alcotest.(check bool) "monotone in n" true
        (recommended ~n:1024 ~eps:0.3 > recommended ~n:256 ~eps:0.3))
    [
      Dut_testers.Collision.recommended_samples;
      Dut_testers.Unique.recommended_samples;
      Dut_testers.Chi_square.recommended_samples;
      Dut_testers.Plugin_l1.recommended_samples;
    ]

let test_recommended_samples_scale_with_eps () =
  List.iter
    (fun recommended ->
      Alcotest.(check bool) "monotone in 1/eps" true
        (recommended ~n:1024 ~eps:0.1 > recommended ~n:1024 ~eps:0.4))
    [
      Dut_testers.Collision.recommended_samples;
      Dut_testers.Unique.recommended_samples;
      Dut_testers.Chi_square.recommended_samples;
      Dut_testers.Plugin_l1.recommended_samples;
    ]

let prop_collision_statistic_vs_local_stat =
  (* Two independent implementations (histogram-based and sort-based)
     must agree. *)
  QCheck.Test.make ~name:"collision statistic = sort-based count" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 30) (int_bound 15))
    (fun samples ->
      let a = Array.of_list samples in
      Dut_testers.Collision.statistic a ~n:16 = Dut_core.Local_stat.collisions a)

let () =
  Alcotest.run "dut_testers"
    [
      ( "collision",
        [
          Alcotest.test_case "statistic" `Quick test_collision_statistic;
          Alcotest.test_case "expectations" `Quick test_collision_expectations;
          Alcotest.test_case "power" `Slow test_collision_power;
          Alcotest.test_case "accepts distinct" `Quick test_collision_accepts_uniform_small;
        ] );
      ( "unique",
        [
          Alcotest.test_case "statistic" `Quick test_unique_statistic;
          Alcotest.test_case "ordering" `Quick test_unique_expectations_ordering;
          Alcotest.test_case "power" `Slow test_unique_power;
        ] );
      ( "chi_square",
        [
          Alcotest.test_case "balanced counts" `Quick test_chi2_statistic_uniform_counts;
          Alcotest.test_case "concentrated" `Quick test_chi2_statistic_concentrated;
          Alcotest.test_case "null mean" `Quick test_chi2_null_mean;
          Alcotest.test_case "power" `Slow test_chi2_power;
        ] );
      ( "plugin_l1",
        [
          Alcotest.test_case "statistic" `Quick test_plugin_statistic;
          Alcotest.test_case "power" `Slow test_plugin_power;
          Alcotest.test_case "costs more than collision" `Quick
            test_plugin_needs_more_samples_than_collision;
        ] );
      ( "poissonized",
        [
          Alcotest.test_case "statistic" `Quick test_poissonized_statistic;
          Alcotest.test_case "counts total" `Quick test_poissonized_counts_total;
          Alcotest.test_case "expectations" `Quick test_poissonized_expectations;
          Alcotest.test_case "power matches fixed-m" `Slow
            test_poissonized_power_matches_fixed_m;
        ] );
      ( "cross",
        [
          Alcotest.test_case "scale with n" `Quick test_recommended_samples_scale_with_n;
          Alcotest.test_case "scale with eps" `Quick test_recommended_samples_scale_with_eps;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_collision_statistic_vs_local_stat ] );
    ]
